//! Per-tenant QoS: token-bucket rate limits plus start-time fair
//! weighted queuing, resolved into a deterministic admission order.
//!
//! The front end never needs the device's completion times to decide
//! admission: token buckets are driven by *arrival* times and WFQ by
//! virtual service, so the whole policy is computable offline. A device
//! run is then just [`evanesco_ssd::Emulator::run_scheduled_open_loop`]
//! over the permuted trace with shaped-arrival floors — which keeps
//! every determinism property of the closed-loop scheduler intact
//! (per-LPA ordering, qd-invariant host-visible results).
//!
//! All bucket math is integer (`u128` nano-page units): one page costs
//! [`TOKENS_PER_PAGE`] units and a tenant limited to `r` pages/s earns
//! `r` units per nanosecond, so shaping is exact and platform-independent
//! — no floating point anywhere near the determinism gate.

use evanesco_nand::timing::Nanos;
use evanesco_workloads::TenantOp;

/// Token units per page: one page costs `1e9` units, so a rate of `r`
/// pages per second refills exactly `r` units per nanosecond.
pub const TOKENS_PER_PAGE: u128 = 1_000_000_000;

/// How the front end orders admissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosMode {
    /// No policing: requests are admitted in arrival order regardless of
    /// tenant (the noisy-neighbor baseline).
    Fifo,
    /// Token-bucket shaping per tenant plus weighted fair queuing across
    /// tenants.
    Shaped,
}

impl QosMode {
    /// Stable lowercase name (JSON / Prometheus label).
    pub fn label(&self) -> &'static str {
        match self {
            QosMode::Fifo => "fifo",
            QosMode::Shaped => "shaped",
        }
    }
}

/// One tenant's QoS contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQos {
    /// WFQ weight (relative share of device service); must be ≥ 1.
    pub weight: u64,
    /// Token-bucket rate in pages per second; `None` = unshaped.
    pub rate_pages_per_sec: Option<u64>,
    /// Bucket depth in pages (ignored when unshaped).
    pub burst_pages: u64,
}

impl TenantQos {
    /// No rate limit, unit weight.
    pub fn unlimited() -> Self {
        TenantQos { weight: 1, rate_pages_per_sec: None, burst_pages: 0 }
    }

    /// A rate-limited tenant.
    pub fn limited(weight: u64, rate_pages_per_sec: u64, burst_pages: u64) -> Self {
        TenantQos { weight, rate_pages_per_sec: Some(rate_pages_per_sec), burst_pages }
    }

    /// Panics on a zero weight or a zero shaped rate.
    pub fn validate(&self, tenant: &str) {
        assert!(self.weight >= 1, "TenantQos[{tenant}]: weight must be >= 1");
        if let Some(r) = self.rate_pages_per_sec {
            assert!(r >= 1, "TenantQos[{tenant}]: a shaped rate must be >= 1 page/s");
            assert!(
                self.burst_pages >= 1,
                "TenantQos[{tenant}]: a shaped tenant needs burst_pages >= 1"
            );
        }
    }
}

/// One admitted request: where it sits in the original trace and when
/// the front end releases it to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// Index into the device's original [`TenantOp`] trace.
    pub trace_idx: usize,
    /// Release time: the shaped arrival the device's open-loop scheduler
    /// floors submission at. Always ≥ the original arrival.
    pub shaped: Nanos,
}

/// Per-tenant token-bucket state.
struct Bucket {
    /// Tokens available, in [`TOKENS_PER_PAGE`] units, capped at burst.
    tokens: u128,
    /// When the bucket was last refilled (shaped clock, monotone).
    last: u64,
}

/// Applies `qos` to one device's trace, returning the admission order
/// and shaped release times.
///
/// * [`QosMode::Fifo`] returns the identity order with `shaped =
///   arrival` — the unpoliced baseline.
/// * [`QosMode::Shaped`] first shapes each tenant's stream through its
///   token bucket (a request leaves only once the bucket holds its page
///   cost; buckets start full), then merges the per-tenant streams by
///   start-time fair queuing over a fixed-rate server model: the device
///   is treated as draining `1 / drain_ns_per_page` pages per
///   nanosecond, so when the offered load exceeds that rate a backlog
///   accumulates and the merge picks among *released* heads by minimum
///   weighted virtual finish (`vstart = max(tenant_vt, shaped)`,
///   `vfinish = vstart + pages × drain / weight`). The drain constant
///   only orders admissions — real service times come from the device
///   emulator, never from this estimate.
///
/// Per-tenant order is always preserved (both modes), so per-tenant
/// host-visible results are independent of the mode — only timing and
/// cross-tenant interleaving change.
///
/// # Panics
///
/// Panics when a `TenantOp` names a tenant outside `qos`, on an invalid
/// QoS row (see [`TenantQos::validate`]), or a zero drain estimate.
pub fn admission_order(
    trace: &[TenantOp],
    qos: &[TenantQos],
    mode: QosMode,
    drain_ns_per_page: u64,
) -> Vec<Admission> {
    if mode == QosMode::Fifo {
        return trace
            .iter()
            .enumerate()
            .map(|(i, req)| Admission { trace_idx: i, shaped: req.arrival })
            .collect();
    }
    for (i, q) in qos.iter().enumerate() {
        q.validate(&format!("#{i}"));
    }
    assert!(drain_ns_per_page >= 1, "the drain estimate must be at least 1 ns per page");

    // Pass 1: shape each tenant's stream through its token bucket.
    let mut buckets: Vec<Bucket> = qos
        .iter()
        .map(|q| Bucket { tokens: q.burst_pages as u128 * TOKENS_PER_PAGE, last: 0 })
        .collect();
    let mut shaped = Vec::with_capacity(trace.len());
    for req in trace {
        let q = &qos[req.tenant];
        let b = &mut buckets[req.tenant];
        // The effective arrival never precedes the tenant's previous
        // release: shaped times stay monotone per tenant.
        let eff = req.arrival.0.max(b.last);
        let release = match q.rate_pages_per_sec {
            None => eff,
            Some(rate) => {
                let rate = rate as u128; // units per nanosecond
                let burst = q.burst_pages as u128 * TOKENS_PER_PAGE;
                let cost = req.op.npages() as u128 * TOKENS_PER_PAGE;
                b.tokens = burst.min(b.tokens + rate * (eff - b.last) as u128);
                if b.tokens >= cost {
                    b.tokens -= cost;
                    eff
                } else {
                    let deficit = cost - b.tokens;
                    let wait = deficit.div_ceil(rate);
                    b.tokens = b.tokens + rate * wait - cost;
                    eff + u64::try_from(wait).expect("shaping delay fits simulated time")
                }
            }
        };
        b.last = release;
        shaped.push(Nanos(release));
    }

    // Pass 2: merge per-tenant streams by start-time fair queuing over a
    // fixed-rate server model. Virtual time is in weight-scaled
    // milli-nanoseconds of modeled service (the ×1000 keeps integer
    // division by the weight from collapsing small costs).
    const VSCALE: u128 = 1000;
    let mut heads: Vec<Vec<usize>> = vec![Vec::new(); qos.len()];
    for (i, req) in trace.iter().enumerate() {
        heads[req.tenant].push(i);
    }
    let mut cursor = vec![0usize; qos.len()];
    let mut tenant_vt = vec![0u128; qos.len()];
    let mut clock = 0u64; // modeled server clock (ns)
    let mut out = Vec::with_capacity(trace.len());
    while out.len() < trace.len() {
        // If the modeled server has drained its backlog, idle forward to
        // the earliest pending release.
        let earliest = (0..qos.len())
            .filter_map(|t| heads[t].get(cursor[t]).map(|&i| shaped[i].0))
            .min()
            .expect("pending requests remain");
        clock = clock.max(earliest);
        // Among released heads, admit the smallest virtual finish
        // (ties: earlier release, then lower tenant id — all total, so
        // the order is deterministic).
        let pick = (0..qos.len())
            .filter_map(|t| {
                let &i = heads[t].get(cursor[t])?;
                (shaped[i].0 <= clock).then(|| {
                    let vstart = tenant_vt[t].max(shaped[i].0 as u128 * VSCALE);
                    let cost = trace[i].op.npages() as u128 * drain_ns_per_page as u128 * VSCALE
                        / qos[t].weight as u128;
                    (vstart + cost, shaped[i].0, t, i)
                })
            })
            .min()
            .expect("at least one head is released at the clock");
        let (vfinish, _, t, i) = pick;
        tenant_vt[t] = vfinish;
        cursor[t] += 1;
        // The modeled server spends the drain estimate serving what it
        // just admitted — this is what lets a backlog (and therefore
        // fairness pressure) build when the offered load exceeds it.
        clock = clock
            .max(shaped[i].0)
            .saturating_add(trace[i].op.npages().saturating_mul(drain_ns_per_page));
        out.push(Admission { trace_idx: i, shaped: shaped[i] });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use evanesco_ssd::HostOp;

    fn req(tenant: usize, arrival: u64, npages: u64) -> TenantOp {
        TenantOp {
            tenant,
            arrival: Nanos(arrival),
            op: HostOp::Write { lpa: 0, npages, secure: true },
        }
    }

    #[test]
    fn fifo_mode_is_the_identity_order() {
        let trace = [req(0, 10, 4), req(1, 20, 1), req(0, 30, 2)];
        let adm = admission_order(&trace, &[TenantQos::unlimited(); 2], QosMode::Fifo, 500);
        assert_eq!(adm.len(), 3);
        for (i, a) in adm.iter().enumerate() {
            assert_eq!(a.trace_idx, i);
            assert_eq!(a.shaped, trace[i].arrival);
        }
    }

    #[test]
    fn token_bucket_spaces_a_burst_at_the_contracted_rate() {
        // 1-page bucket refilling at 1 page per microsecond: four
        // simultaneous 1-page requests leave 1000 ns apart.
        let qos = [TenantQos::limited(1, 1_000_000, 1)];
        let trace = [req(0, 0, 1), req(0, 0, 1), req(0, 0, 1), req(0, 0, 1)];
        let adm = admission_order(&trace, &qos, QosMode::Shaped, 500);
        let releases: Vec<u64> = adm.iter().map(|a| a.shaped.0).collect();
        assert_eq!(releases, vec![0, 1000, 2000, 3000]);
        // Per-tenant order preserved.
        let idxs: Vec<usize> = adm.iter().map(|a| a.trace_idx).collect();
        assert_eq!(idxs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn an_idle_bucket_refills_up_to_its_burst() {
        // After 5 µs idle the 2-page bucket is full again: two pages pass
        // unshaped, the third waits.
        let qos = [TenantQos::limited(1, 1_000_000, 2)];
        let trace = [req(0, 0, 2), req(0, 5000, 1), req(0, 5000, 1), req(0, 5000, 1)];
        let adm = admission_order(&trace, &qos, QosMode::Shaped, 500);
        let releases: Vec<u64> = adm.iter().map(|a| a.shaped.0).collect();
        assert_eq!(releases, vec![0, 5000, 5000, 6000]);
    }

    #[test]
    fn wfq_interleaves_a_heavy_and_a_light_tenant_by_weight() {
        // Tenant 0 floods 8-page requests; tenant 1 sends 1-page requests
        // at the same instants with equal weight. SFQ must not let the
        // flood starve tenant 1: its requests admit at a steady cadence.
        let qos = [TenantQos::unlimited(), TenantQos::unlimited()];
        let mut trace = Vec::new();
        for k in 0..8 {
            trace.push(req(0, k, 8));
            trace.push(req(1, k, 1));
        }
        let adm = admission_order(&trace, &qos, QosMode::Shaped, 500);
        // All of tenant 1's requests admit within the first half of the
        // schedule: 8 light pages cost what one heavy request costs.
        let light_positions: Vec<usize> = adm
            .iter()
            .enumerate()
            .filter(|(_, a)| trace[a.trace_idx].tenant == 1)
            .map(|(pos, _)| pos)
            .collect();
        assert!(
            *light_positions.last().unwrap() <= adm.len() / 2,
            "light tenant starved: admitted at positions {light_positions:?}"
        );
    }

    #[test]
    fn shaped_releases_never_precede_arrivals_and_stay_monotone_per_tenant() {
        let qos = [TenantQos::limited(2, 500_000, 4), TenantQos::unlimited()];
        let mut trace = Vec::new();
        for k in 0..64u64 {
            trace.push(req((k % 2) as usize, k * 37 % 1000, 1 + k % 8));
        }
        // Arrivals in a real trace are nondecreasing.
        trace.sort_by_key(|r| r.arrival);
        let adm = admission_order(&trace, &qos, QosMode::Shaped, 500);
        assert_eq!(adm.len(), trace.len());
        let mut last = [0u64; 2];
        let mut seen = std::collections::HashSet::new();
        // Check in trace order (admissions permute it).
        let mut by_idx: Vec<&Admission> = adm.iter().collect();
        by_idx.sort_by_key(|a| a.trace_idx);
        for a in by_idx {
            assert!(seen.insert(a.trace_idx), "each request admitted exactly once");
            let t = trace[a.trace_idx].tenant;
            assert!(a.shaped >= trace[a.trace_idx].arrival);
            assert!(a.shaped.0 >= last[t], "tenant {t} releases went backwards");
            last[t] = a.shaped.0;
        }
    }
}

//! Fleet topology: devices, shards, namespaces, and per-tenant QoS.

use crate::qos::{QosMode, TenantQos};
use evanesco_ftl::SanitizePolicy;
use evanesco_ssd::SsdConfig;
use evanesco_workloads::TrafficConfig;

/// The whole fleet: identical devices, a tenant set shared by every
/// device, and the QoS policy the front end applies to each tenant.
///
/// Tenants map onto devices NVMe-style: tenant `t` owns namespace `t` on
/// **every** device, a contiguous LPA window of
/// [`FleetConfig::namespace_window`] pages starting at `t × window`.
/// Request streams address namespace-relative LPAs; the runner rebases
/// them onto the device's logical space.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-device SSD configuration (every device is identical).
    pub ssd: SsdConfig,
    /// Per-device sanitization policy.
    pub policy: SanitizePolicy,
    /// The offered load (tenants, skew, arrival process, seed).
    pub traffic: TrafficConfig,
    /// One QoS row per tenant, same order as `traffic.tenants`.
    pub qos: Vec<TenantQos>,
    /// Whether the front end shapes admissions or passes arrival order.
    pub mode: QosMode,
    /// Emulated devices in the fleet.
    pub devices: usize,
    /// OS threads the devices are sharded over (`device % shards`).
    pub shards: usize,
    /// NCQ queue depth of every device.
    pub qd: usize,
    /// Whether every device runs with the latency-anatomy layer on
    /// (per-request stage decomposition with sanitization/GC/retry
    /// blame, surfaced per tenant in the report and scrape). The layer
    /// is timing-neutral: enabling it cannot change digests.
    pub anatomy: bool,
}

impl FleetConfig {
    /// A small noisy-neighbor fleet on the miniature test SSD: one storm
    /// tenant (rank 0) plus `victims` well-behaved tenants, QoS off
    /// (arrival-order FIFO) — flip [`FleetConfig::mode`] and
    /// [`FleetConfig::qos`] to police the storm.
    pub fn noisy_neighbor_demo(
        devices: usize,
        victims: usize,
        requests_per_device: usize,
        seed: u64,
    ) -> Self {
        let mut cfg = SsdConfig::tiny_for_tests();
        cfg.track_tags = false;
        cfg.stale_audit = false;
        FleetConfig {
            ssd: cfg,
            policy: SanitizePolicy::evanesco(),
            traffic: TrafficConfig::noisy_neighbor(victims, requests_per_device, seed),
            qos: vec![TenantQos::unlimited(); victims + 1],
            mode: QosMode::Fifo,
            devices,
            shards: 1,
            qd: 8,
            anatomy: false,
        }
    }

    /// Tenants in the fleet.
    pub fn tenant_count(&self) -> usize {
        self.traffic.tenants.len()
    }

    /// Pages in each tenant's namespace window: the device's logical
    /// space split evenly (remainder pages stay unmapped).
    pub fn namespace_window(&self) -> u64 {
        self.ssd.ftl.logical_pages() / self.tenant_count().max(1) as u64
    }

    /// The WFQ merge's fixed-rate server model: nanoseconds of modeled
    /// device service per page — nominal program + transfer time divided
    /// by chip-level parallelism. Only orders admissions; real service
    /// times come from the emulator.
    pub fn drain_ns_per_page(&self) -> u64 {
        let t = &self.ssd.ftl.timing;
        ((t.t_prog.0 + t.t_xfer_page.0) / self.ssd.ftl.n_chips.max(1) as u64).max(1)
    }

    /// Validates the fleet shape.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet, zero shards or queue depth, a QoS table
    /// that does not match the tenant list, or namespace windows the
    /// device's logical space cannot hold (including the degenerate case
    /// where a window cannot fit the largest request — delegated to the
    /// traffic generator's own check via [`SsdConfig::check_lpa_range`]).
    pub fn validate(&self) {
        self.ssd.validate();
        assert!(self.devices >= 1, "FleetConfig: a fleet needs at least one device");
        assert!(self.shards >= 1, "FleetConfig: at least one shard");
        assert!(self.qd >= 1, "FleetConfig: queue depth must be at least 1");
        assert!(!self.traffic.tenants.is_empty(), "FleetConfig: at least one tenant");
        assert_eq!(
            self.qos.len(),
            self.tenant_count(),
            "FleetConfig: one QoS row per tenant ({} rows for {} tenants)",
            self.qos.len(),
            self.tenant_count(),
        );
        for (i, q) in self.qos.iter().enumerate() {
            q.validate(&self.traffic.tenants[i].name);
        }
        let window = self.namespace_window();
        let max_req = self.traffic.tenants.iter().map(|t| t.req_pages.1).max().unwrap();
        assert!(
            window >= max_req,
            "FleetConfig: namespace window of {window} pages cannot hold a \
             {max_req}-page request ({} tenants over {} logical pages)",
            self.tenant_count(),
            self.ssd.ftl.logical_pages(),
        );
        // The last namespace's top page must be host-addressable: the
        // rebased range check is exactly the one the scheduler applies at
        // submission, so a bad fleet shape fails here, not mid-run.
        let last_base = (self.tenant_count() as u64 - 1) * window;
        self.ssd
            .check_lpa_range(last_base, window)
            .expect("FleetConfig: tenant windows exceed the device's logical space");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_config_validates_and_splits_namespaces_evenly() {
        let cfg = FleetConfig::noisy_neighbor_demo(2, 3, 100, 1);
        cfg.validate();
        assert_eq!(cfg.tenant_count(), 4);
        let window = cfg.namespace_window();
        assert!(window >= 16, "window holds the storm tenant's largest request");
        assert!(window * 4 <= cfg.ssd.ftl.logical_pages());
    }

    #[test]
    #[should_panic(expected = "one QoS row per tenant")]
    fn qos_table_must_match_tenant_list() {
        let mut cfg = FleetConfig::noisy_neighbor_demo(1, 2, 100, 1);
        cfg.qos.pop();
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "namespace window")]
    fn too_many_tenants_for_the_device_is_rejected() {
        let mut cfg = FleetConfig::noisy_neighbor_demo(1, 2, 100, 1);
        let lp = cfg.ssd.ftl.logical_pages();
        // More tenants than the device has pages per 16-page request.
        let n = (lp / 8) as usize;
        cfg.traffic = TrafficConfig::noisy_neighbor(n, 100, 1);
        cfg.qos = vec![TenantQos::unlimited(); n + 1];
        cfg.validate();
    }
}

//! Per-tenant attribution of sanitization-exposure events.
//!
//! One device hosts many tenants, but the FTL's observer callbacks speak
//! physical addresses — an invalidation or erase does not say whose data
//! it touched. [`TenantAttribution`] closes that gap: it learns ownership
//! at program time (the logical address *is* available there, and the
//! namespace map makes `lpa / window` the owning tenant), remembers it
//! per physical page, and routes every later invalidate to the owner's
//! private [`LiveGauges`]. Erases and host ticks broadcast: each gauge
//! set removes only pages it tracks, and logical time is device-wide.
//!
//! The result: per-tenant VAF and T_insecure on a shared device — a
//! noisy neighbor's pile of unsanitized stale versions lands on *its*
//! gauges, not its victims'.

use evanesco_ftl::observer::{FtlObserver, InvalidateCause};
use evanesco_ftl::{GlobalPpa, Lpa};
use evanesco_ssd::{GaugeSnapshot, LiveGauges};
use std::collections::HashMap;

/// Routes [`FtlObserver`] events to per-tenant [`LiveGauges`] using the
/// fleet's namespace map (`tenant = lpa / window`).
#[derive(Debug)]
pub struct TenantAttribution {
    window: u64,
    gauges: Vec<LiveGauges>,
    /// `(chip, block)` → page → owning tenant, learned at program time.
    /// Holds only pages some gauge set still tracks (secured and not yet
    /// sanitized/erased), so it is bounded by physical capacity.
    owner: HashMap<(usize, u32), HashMap<u32, usize>>,
}

impl TenantAttribution {
    /// Attribution for `tenants` namespaces of `window` pages each.
    ///
    /// # Panics
    ///
    /// Panics on zero tenants or a zero window.
    pub fn new(tenants: usize, window: u64) -> Self {
        assert!(tenants >= 1, "attribution needs at least one tenant");
        assert!(window >= 1, "namespace windows cannot be empty");
        TenantAttribution {
            window,
            gauges: vec![LiveGauges::new(); tenants],
            owner: HashMap::new(),
        }
    }

    /// Point-in-time snapshot of every tenant's gauges, tenant order.
    pub fn snapshots(&self) -> Vec<GaugeSnapshot> {
        self.gauges.iter().map(|g| g.snapshot()).collect()
    }

    /// One tenant's gauges (for tests and scrapes).
    pub fn tenant(&self, t: usize) -> &LiveGauges {
        &self.gauges[t]
    }
}

impl FtlObserver for TenantAttribution {
    fn on_program(&mut self, lpa: Lpa, at: GlobalPpa, relocation: bool, secure: bool) {
        let tenant = ((lpa / self.window) as usize).min(self.gauges.len() - 1);
        if secure {
            self.owner.entry((at.chip, at.ppa.block.0)).or_default().insert(at.ppa.page.0, tenant);
        }
        self.gauges[tenant].on_program(lpa, at, relocation, secure);
    }

    fn on_invalidate(
        &mut self,
        at: GlobalPpa,
        secure: bool,
        sanitized: bool,
        cause: InvalidateCause,
    ) {
        let key = (at.chip, at.ppa.block.0);
        let Some(block) = self.owner.get_mut(&key) else { return };
        let Some(&tenant) = block.get(&at.ppa.page.0) else { return };
        if sanitized {
            // The gauges drop a sanitized page immediately; mirror that
            // so the owner map stays bounded by what the gauges track.
            block.remove(&at.ppa.page.0);
            if block.is_empty() {
                self.owner.remove(&key);
            }
        }
        self.gauges[tenant].on_invalidate(at, secure, sanitized, cause);
    }

    fn on_erase(&mut self, chip: usize, block: evanesco_nand::geometry::BlockId) {
        self.owner.remove(&(chip, block.0));
        // Broadcast: each gauge set removes only pages it tracks.
        for g in &mut self.gauges {
            g.on_erase(chip, block);
        }
    }

    fn on_host_tick(&mut self) {
        // Logical time (accepted host page writes) is device-wide; every
        // tenant's T_insecure is measured on the shared clock.
        for g in &mut self.gauges {
            g.on_host_tick();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evanesco_nand::geometry::{BlockId, Ppa};

    fn at(chip: usize, block: u32, page: u32) -> GlobalPpa {
        GlobalPpa::new(chip, Ppa::new(block, page))
    }

    #[test]
    fn programs_and_invalidates_land_on_the_owning_tenant() {
        // Two tenants, 100-page windows: lpa 5 → tenant 0, lpa 105 → 1.
        let mut a = TenantAttribution::new(2, 100);
        a.on_program(5, at(0, 0, 0), false, true);
        a.on_program(105, at(0, 0, 1), false, true);
        a.on_invalidate(at(0, 0, 1), true, false, InvalidateCause::HostUpdate);
        let s = a.snapshots();
        assert_eq!(s[0].valid_secured, 1);
        assert_eq!(s[0].invalid_secured, 0);
        assert_eq!(s[1].valid_secured, 0);
        assert_eq!(s[1].invalid_secured, 1, "exposure charged to the owner, not a neighbor");
    }

    #[test]
    fn erases_broadcast_but_only_touch_tracked_pages() {
        let mut a = TenantAttribution::new(2, 100);
        a.on_program(0, at(0, 3, 0), false, true);
        a.on_program(150, at(0, 3, 1), false, true);
        a.on_invalidate(at(0, 3, 0), true, false, InvalidateCause::Trim);
        a.on_erase(0, BlockId(3));
        let s = a.snapshots();
        assert_eq!(s[0].exposed_then_erased, 1);
        assert_eq!(s[0].invalid_secured, 0);
        assert_eq!(s[1].valid_secured, 0, "tenant 1's live page was destroyed by the erase");
        assert_eq!(s[1].exposed_then_erased, 0);
        assert!(a.owner.is_empty(), "erase clears the ownership map");
    }

    #[test]
    fn sanitized_invalidations_release_their_owner_entry() {
        let mut a = TenantAttribution::new(2, 100);
        a.on_program(7, at(1, 0, 0), false, true);
        a.on_invalidate(at(1, 0, 0), true, true, InvalidateCause::HostUpdate);
        assert!(a.owner.is_empty());
        assert_eq!(a.snapshots()[0].sanitized_immediately, 1);
    }

    #[test]
    fn ticks_advance_every_tenant_clock() {
        let mut a = TenantAttribution::new(3, 10);
        for _ in 0..5 {
            a.on_host_tick();
        }
        for s in a.snapshots() {
            assert_eq!(s.tick, 5);
        }
    }
}

//! # evanesco-fleet
//!
//! Fleet-scale emulation for the Evanesco (ASPLOS 2020) reproduction: N
//! emulated SSDs sharded across OS threads behind an NVMe-style
//! multi-namespace front end, with per-tenant QoS and per-tenant
//! sanitization-exposure attribution.
//!
//! * [`config::FleetConfig`] — devices × shards × queue depth, the
//!   per-device [`evanesco_ssd::SsdConfig`], and one QoS row per tenant;
//! * [`qos`] — token-bucket rate limits plus start-time-fair weighted
//!   queuing, resolved **offline** into a deterministic admission order;
//! * [`attribution`] — an [`evanesco_ftl::observer::FtlObserver`] that
//!   routes program/invalidate/erase events to per-tenant
//!   [`evanesco_ssd::LiveGauges`], so VAF and T_insecure are attributed
//!   to the tenant that owns each physical page;
//! * [`runner`] — per-device execution and the sharded fleet run, with
//!   FNV-1a digests proving byte-identical per-device results across
//!   shard counts and reruns;
//! * [`scrape`] — one fleet-wide Prometheus exposition with
//!   tenant-labeled families (label values escaped).
//!
//! ## Determinism
//!
//! Every device's trace is a pure function of `(seed, device)`; every
//! device runs single-threaded on whichever shard owns it (`device %
//! shards`). Threads never share mutable state, so the per-device digest
//! is invariant under the shard count and the thread interleaving — the
//! property the `fleet` experiment gate checks byte-for-byte.
//!
//! ```rust
//! use evanesco_fleet::{FleetConfig, run_fleet};
//!
//! # fn main() {
//! let cfg = FleetConfig::noisy_neighbor_demo(2, 2, 400, 42);
//! let report = run_fleet(&cfg);
//! assert_eq!(report.devices.len(), 2);
//! assert!(report.tenants.iter().any(|t| t.requests > 0));
//! # }
//! ```

pub mod attribution;
pub mod config;
pub mod qos;
pub mod runner;
pub mod scrape;

pub use attribution::TenantAttribution;
pub use config::FleetConfig;
pub use qos::{admission_order, Admission, QosMode, TenantQos};
pub use runner::{
    run_device, run_fleet, DeviceResult, FleetReport, TenantDeviceStats, TenantFleetStats,
};
pub use scrape::render_fleet;

//! Sharded fleet execution with byte-identity determinism digests.
//!
//! A fleet run is embarrassingly deterministic by construction: every
//! device's trace is a pure function of `(seed, device)`, QoS admission
//! is resolved offline ([`crate::qos::admission_order`]), and each
//! device executes single-threaded on the shard that owns it (`device %
//! shards`). Shards share nothing mutable, so per-device results cannot
//! depend on the shard count or the OS's thread interleaving. Two FNV-1a
//! digests make that checkable byte-for-byte:
//!
//! * [`DeviceResult::results_digest`] — host-visible results only
//!   (tags, read values, acks). Invariant across queue depth *and*
//!   shard count: the NCQ scheduler preserves per-LPA order and
//!   preassigns write tags in trace order.
//! * [`DeviceResult::digest`] — results plus per-request completion
//!   times and the simulated end time. Invariant across shard counts
//!   and reruns at a fixed queue depth — the fleet gate's check.

use crate::attribution::TenantAttribution;
use crate::config::FleetConfig;
use crate::qos::admission_order;
use evanesco_nand::timing::Nanos;
use evanesco_ssd::metrics::LatencyHistogram;
use evanesco_ssd::{Emulator, GaugeSnapshot, HostOp, OpResult, Stage};
use evanesco_workloads::{generate_fleet, TenantOp};

/// One tenant's share of one device's run.
#[derive(Debug, Clone)]
pub struct TenantDeviceStats {
    /// Requests this tenant issued to this device.
    pub requests: u64,
    /// Pages those requests covered.
    pub pages: u64,
    /// End-to-end request latency (completion − *original* arrival, so
    /// QoS shaping delay is charged to the tenant that was shaped).
    pub latency: LatencyHistogram,
    /// The tenant's sanitization-exposure gauges on this device.
    pub gauges: GaugeSnapshot,
    /// Per-stage latency blame summed over every request
    /// ([`Stage`] order, all zero unless [`FleetConfig::anatomy`]).
    /// QoS shaping delay lands in [`Stage::QosWait`], front-end slot
    /// wait folds into [`Stage::QueueWait`], and the device-side stages
    /// come from the anatomy rows — so the per-tenant identity
    /// `Σ blame == Σ latency` holds exactly.
    pub blame: [Nanos; Stage::COUNT],
    /// Same decomposition restricted to the tenant's slowest requests
    /// (end-to-end latency at or above this device's per-tenant p99).
    pub tail_blame: [Nanos; Stage::COUNT],
    /// Requests counted into [`TenantDeviceStats::tail_blame`].
    pub tail_requests: u64,
}

/// One device's run.
#[derive(Debug, Clone)]
pub struct DeviceResult {
    /// Device index in the fleet.
    pub device: usize,
    /// Simulated end time.
    pub sim_time: Nanos,
    /// FNV-1a over host-visible results only (qd- and shard-invariant).
    pub results_digest: u64,
    /// FNV-1a over results, completions, and end time (shard- and
    /// rerun-invariant at fixed queue depth).
    pub digest: u64,
    /// Request traces evicted from the device's trace ring
    /// ([`evanesco_ssd::TraceRecorder::dropped`]); zero when tracing is
    /// off or the ring held everything.
    pub trace_dropped: u64,
    /// Per-tenant attribution, tenant order.
    pub tenants: Vec<TenantDeviceStats>,
}

/// One tenant aggregated across the whole fleet.
#[derive(Debug, Clone)]
pub struct TenantFleetStats {
    /// Tenant name (from the traffic profile).
    pub name: String,
    /// Requests across all devices.
    pub requests: u64,
    /// Pages across all devices.
    pub pages: u64,
    /// Fleet-wide latency distribution (per-device histograms merged).
    pub latency: LatencyHistogram,
    /// Sum of per-device peak valid secured pages.
    pub max_valid: u64,
    /// Sum of per-device peak invalid (exposed) secured pages.
    pub max_invalid: u64,
    /// Sum of per-device insecure ticks.
    pub insecure_ticks: u64,
    /// Secured invalidations sanitized immediately, fleet-wide.
    pub sanitized_immediately: u64,
    /// Exposed pages finally destroyed by an erase, fleet-wide.
    pub exposed_then_erased: u64,
    /// Per-stage latency blame, fleet-wide (see
    /// [`TenantDeviceStats::blame`]).
    pub blame: [Nanos; Stage::COUNT],
    /// Per-stage blame over each device's p99 tail, fleet-wide.
    pub tail_blame: [Nanos; Stage::COUNT],
    /// Requests counted into [`TenantFleetStats::tail_blame`].
    pub tail_requests: u64,
}

impl TenantFleetStats {
    /// Fleet-wide version amplification factor.
    pub fn vaf(&self) -> f64 {
        if self.max_valid == 0 {
            0.0
        } else {
            self.max_invalid as f64 / self.max_valid as f64
        }
    }

    /// Fleet-wide T_insecure normalized by total capacity written.
    pub fn t_insecure(&self, capacity_pages: u64) -> f64 {
        if capacity_pages == 0 {
            0.0
        } else {
            self.insecure_ticks as f64 / capacity_pages as f64
        }
    }
}

/// The whole fleet's run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-device results, device order.
    pub devices: Vec<DeviceResult>,
    /// Per-tenant aggregation, tenant order.
    pub tenants: Vec<TenantFleetStats>,
    /// FNV-1a over every device's full digest, device order — one number
    /// that must survive any shard count and any rerun.
    pub fleet_digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a over little-endian `u64`s.
fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds one host-visible result into a digest with an unambiguous
/// tag/length framing.
fn fnv_result(mut h: u64, r: &OpResult) -> u64 {
    match r {
        OpResult::Write(tags, ack) => {
            h = fnv_u64(h, 1);
            h = fnv_u64(h, tags.len() as u64);
            for t in tags {
                h = fnv_u64(h, *t);
            }
            fnv_u64(h, *ack as u64)
        }
        OpResult::Read(vals) => {
            h = fnv_u64(h, 2);
            h = fnv_u64(h, vals.len() as u64);
            for v in vals {
                h = match v {
                    Some(t) => fnv_u64(fnv_u64(h, 1), *t),
                    None => fnv_u64(h, 0),
                };
            }
            h
        }
        OpResult::Trim(ack) => fnv_u64(fnv_u64(h, 3), *ack as u64),
        OpResult::TimedOut => fnv_u64(h, 4),
    }
}

/// Rebases a namespace-relative request onto the device's logical space.
fn rebase(op: HostOp, base: u64) -> HostOp {
    match op {
        HostOp::Write { lpa, npages, secure } => HostOp::Write { lpa: lpa + base, npages, secure },
        HostOp::Read { lpa, npages } => HostOp::Read { lpa: lpa + base, npages },
        HostOp::Trim { lpa, npages } => HostOp::Trim { lpa: lpa + base, npages },
    }
}

/// Runs one device: applies QoS to its trace, executes the admitted
/// stream open-loop on a fresh emulator, and attributes everything back
/// to tenants. Pure: same `(cfg, device, trace)` ⇒ same bytes out.
pub fn run_device(cfg: &FleetConfig, device: usize, trace: &[TenantOp]) -> DeviceResult {
    let window = cfg.namespace_window();
    let admission = admission_order(trace, &cfg.qos, cfg.mode, cfg.drain_ns_per_page());
    let mut ops = Vec::with_capacity(admission.len());
    let mut arrivals = Vec::with_capacity(admission.len());
    for a in &admission {
        let req = &trace[a.trace_idx];
        ops.push(rebase(req.op, req.tenant as u64 * window));
        arrivals.push(a.shaped);
    }

    let mut ssd = Emulator::new(cfg.ssd, cfg.policy);
    if cfg.anatomy {
        // Sized to the op count: nothing drops, every request keeps a row.
        ssd.enable_anatomy(ops.len().max(1), 16);
    }
    let mut attr = TenantAttribution::new(cfg.tenant_count(), window);
    let run = ssd.run_scheduled_open_loop(&mut attr, &ops, &arrivals, cfg.qd);
    let trace_dropped = ssd.trace().map_or(0, |t| t.dropped());
    let anatomy = ssd.take_anatomy();

    let mut tenants: Vec<TenantDeviceStats> = attr
        .snapshots()
        .into_iter()
        .map(|gauges| TenantDeviceStats {
            requests: 0,
            pages: 0,
            latency: LatencyHistogram::new(),
            gauges,
            blame: [Nanos::ZERO; Stage::COUNT],
            tail_blame: [Nanos::ZERO; Stage::COUNT],
            tail_requests: 0,
        })
        .collect();
    for (i, a) in admission.iter().enumerate() {
        let req = &trace[a.trace_idx];
        let t = &mut tenants[req.tenant];
        t.requests += 1;
        t.pages += req.op.npages();
        // Latency from the tenant's point of view: shaping delay counts.
        t.latency.record(Nanos(run.completions[i].0.saturating_sub(req.arrival.0)));
    }

    if let Some(an) = anatomy {
        // Join the device-side anatomy rows back to requests by
        // submission index, then extend each row to the tenant's clock:
        // QoS shaping delay is QosWait, front-end slot wait folds into
        // QueueWait, and the row's stages tile the rest — so per tenant
        // the blame array sums exactly to the latency histogram's sum.
        let mut row_stages: Vec<Option<[Nanos; Stage::COUNT]>> = vec![None; ops.len()];
        for row in an.rows() {
            if let Some(i) = row.req_idx {
                row_stages[i] = Some(row.stages);
            }
        }
        // Tail threshold per tenant. The histogram's p99 is a bucket
        // bound and can overshoot every recorded value; clamping to the
        // exact max keeps the tail non-empty for any tenant with
        // requests.
        let p99: Vec<Nanos> =
            tenants.iter().map(|t| t.latency.percentile(99.0).min(t.latency.max())).collect();
        for (i, a) in admission.iter().enumerate() {
            let req = &trace[a.trace_idx];
            // Zero-work requests (no device events, zero service time)
            // never enter the trace ring — their device stages are all
            // zero, which the identity check below still validates.
            let mut stages = row_stages[i].unwrap_or([Nanos::ZERO; Stage::COUNT]);
            stages[Stage::QosWait.idx()] += Nanos(a.shaped.0.saturating_sub(req.arrival.0));
            stages[Stage::QueueWait.idx()] += Nanos(run.submits[i].0.saturating_sub(a.shaped.0));
            let e2e = run.completions[i].0.saturating_sub(req.arrival.0);
            let total: u64 = stages.iter().map(|s| s.0).sum();
            assert_eq!(
                total, e2e,
                "fleet latency identity: qos wait + slot wait + device stages == end-to-end \
                 (device {device}, request {i})"
            );
            let t = &mut tenants[req.tenant];
            for (acc, v) in t.blame.iter_mut().zip(stages) {
                *acc += v;
            }
            if Nanos(e2e) >= p99[req.tenant] {
                t.tail_requests += 1;
                for (acc, v) in t.tail_blame.iter_mut().zip(stages) {
                    *acc += v;
                }
            }
        }
    }

    let results_digest = run.results.iter().fold(FNV_OFFSET, fnv_result);
    let mut digest = results_digest;
    for c in &run.completions {
        digest = fnv_u64(digest, c.0);
    }
    digest = fnv_u64(digest, run.sim_time.0);
    DeviceResult { device, sim_time: run.sim_time, results_digest, digest, trace_dropped, tenants }
}

/// Runs the whole fleet, sharding devices over `cfg.shards` OS threads
/// (`device % shards`), and aggregates per-tenant statistics.
///
/// # Panics
///
/// Panics on an invalid configuration (see [`FleetConfig::validate`]) or
/// if a shard thread panics.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    cfg.validate();
    let traces = generate_fleet(&cfg.traffic, cfg.devices, cfg.namespace_window());
    let mut per_shard: Vec<Vec<DeviceResult>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.shards)
            .map(|shard| {
                let traces = &traces;
                s.spawn(move || {
                    (shard..cfg.devices)
                        .step_by(cfg.shards)
                        .map(|d| run_device(cfg, d, &traces[d]))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
    });

    // Reassemble device order — shard boundaries must leave no trace.
    let mut devices: Vec<DeviceResult> = Vec::with_capacity(cfg.devices);
    for shard in &mut per_shard {
        devices.append(shard);
    }
    devices.sort_by_key(|d| d.device);

    let mut tenants: Vec<TenantFleetStats> = cfg
        .traffic
        .tenants
        .iter()
        .map(|t| TenantFleetStats {
            name: t.name.clone(),
            requests: 0,
            pages: 0,
            latency: LatencyHistogram::new(),
            max_valid: 0,
            max_invalid: 0,
            insecure_ticks: 0,
            sanitized_immediately: 0,
            exposed_then_erased: 0,
            blame: [Nanos::ZERO; Stage::COUNT],
            tail_blame: [Nanos::ZERO; Stage::COUNT],
            tail_requests: 0,
        })
        .collect();
    let mut fleet_digest = FNV_OFFSET;
    for d in &devices {
        fleet_digest = fnv_u64(fleet_digest, d.digest);
        for (agg, dev) in tenants.iter_mut().zip(&d.tenants) {
            agg.requests += dev.requests;
            agg.pages += dev.pages;
            agg.latency.merge(&dev.latency);
            agg.max_valid += dev.gauges.max_valid;
            agg.max_invalid += dev.gauges.max_invalid;
            agg.insecure_ticks += dev.gauges.insecure_ticks;
            agg.sanitized_immediately += dev.gauges.sanitized_immediately;
            agg.exposed_then_erased += dev.gauges.exposed_then_erased;
            for (a, b) in agg.blame.iter_mut().zip(dev.blame) {
                *a += b;
            }
            for (a, b) in agg.tail_blame.iter_mut().zip(dev.tail_blame) {
                *a += b;
            }
            agg.tail_requests += dev.tail_requests;
        }
    }
    FleetReport { devices, tenants, fleet_digest }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_fleet_runs_and_attributes_every_request() {
        let cfg = FleetConfig::noisy_neighbor_demo(2, 2, 300, 11);
        let report = run_fleet(&cfg);
        assert_eq!(report.devices.len(), 2);
        assert_eq!(report.tenants.len(), 3);
        let total: u64 = report.tenants.iter().map(|t| t.requests).sum();
        assert_eq!(total, 600, "every generated request is attributed exactly once");
        for t in &report.tenants {
            assert!(t.latency.count() == t.requests);
        }
        // The storm tenant (rank 0, 8x share) dominates the offered load.
        assert!(report.tenants[0].requests > report.tenants[1].requests);
    }

    #[test]
    fn devices_differ_but_reruns_do_not() {
        let cfg = FleetConfig::noisy_neighbor_demo(2, 2, 200, 5);
        let a = run_fleet(&cfg);
        let b = run_fleet(&cfg);
        assert_eq!(a.fleet_digest, b.fleet_digest);
        assert_ne!(
            a.devices[0].digest, a.devices[1].digest,
            "independent per-device streams produce distinct runs"
        );
    }

    #[test]
    fn anatomy_is_timing_neutral_and_blame_tiles_latency() {
        let mut cfg = FleetConfig::noisy_neighbor_demo(2, 2, 250, 17);
        let off = run_fleet(&cfg);
        cfg.anatomy = true;
        let on = run_fleet(&cfg);
        assert_eq!(off.fleet_digest, on.fleet_digest, "observability must not move the clock");
        for t in &off.tenants {
            assert_eq!(t.blame.iter().map(|n| n.0).sum::<u64>(), 0, "anatomy off: no blame");
        }
        for t in &on.tenants {
            let blamed: u64 = t.blame.iter().map(|n| n.0).sum();
            assert_eq!(
                blamed,
                t.latency.sum().0,
                "tenant {}: per-stage blame tiles total latency exactly",
                t.name
            );
            assert!(t.tail_requests >= 1, "tenant {}: p99 tail is non-empty", t.name);
            let tail: u64 = t.tail_blame.iter().map(|n| n.0).sum();
            assert!(tail <= blamed, "tail blame is a subset of total blame");
        }
    }
}

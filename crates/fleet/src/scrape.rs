//! One fleet-wide Prometheus exposition (text format 0.0.4).
//!
//! A fleet has one scrape endpoint, not one per device: everything here
//! is aggregated per tenant (with a `tenant` label, value-escaped by
//! [`evanesco_ssd::prom::LabeledFamily`]) plus one `_info`-style series
//! per device carrying its determinism digest — so a dashboard can both
//! chart noisy-neighbor impact and alert on digest drift between
//! deployments that should be identical.

use crate::config::FleetConfig;
use crate::runner::FleetReport;
use evanesco_ssd::prom::LabeledFamily;
use evanesco_ssd::Stage;
use std::fmt::Write as _;

/// Renders the fleet-wide scrape. Infallible by construction: every
/// family below is populated from a non-empty fleet (a [`FleetReport`]
/// always holds ≥ 1 device and ≥ 1 tenant).
pub fn render_fleet(cfg: &FleetConfig, report: &FleetReport) -> String {
    let mut out = String::new();
    writeln!(out, "# HELP evanesco_fleet_devices Devices in the fleet.").unwrap();
    writeln!(out, "# TYPE evanesco_fleet_devices gauge").unwrap();
    writeln!(out, "evanesco_fleet_devices {}", report.devices.len()).unwrap();
    writeln!(out, "# HELP evanesco_fleet_shards Shard threads the fleet ran on.").unwrap();
    writeln!(out, "# TYPE evanesco_fleet_shards gauge").unwrap();
    writeln!(out, "evanesco_fleet_shards {}", cfg.shards).unwrap();

    let mut requests = LabeledFamily::new(
        "evanesco_fleet_tenant_requests_total",
        "Requests a tenant issued fleet-wide.",
        "counter",
    );
    let mut pages = LabeledFamily::new(
        "evanesco_fleet_tenant_pages_total",
        "Pages a tenant's requests covered fleet-wide.",
        "counter",
    );
    let mut lat = LabeledFamily::new(
        "evanesco_fleet_tenant_latency_seconds",
        "Per-tenant end-to-end request latency quantiles (shaping delay included).",
        "gauge",
    );
    let mut vaf = LabeledFamily::new(
        "evanesco_fleet_tenant_vaf",
        "Per-tenant version amplification factor (peak exposed / peak valid secured pages).",
        "gauge",
    );
    let mut exposed = LabeledFamily::new(
        "evanesco_fleet_tenant_insecure_ticks_total",
        "Logical ticks during which a tenant had deleted-but-recoverable secured data.",
        "counter",
    );
    let mut blame = LabeledFamily::new(
        "evanesco_fleet_tenant_blame_ns_total",
        "Per-tenant per-stage latency blame: every nanosecond of every request's \
         end-to-end latency charged to exactly one stage (anatomy runs only).",
        "counter",
    );
    let mut tail_blame = LabeledFamily::new(
        "evanesco_fleet_tenant_tail_blame_ns_total",
        "Per-tenant per-stage latency blame over the p99 tail (anatomy runs only).",
        "counter",
    );
    for t in &report.tenants {
        let labels = [("tenant", t.name.as_str()), ("qos", cfg.mode.label())];
        requests.sample_u(&labels, t.requests);
        pages.sample_u(&labels, t.pages);
        // A zero-request tenant still gets explicit, finite samples:
        // LatencyHistogram::percentile is 0 on an empty histogram and
        // vaf() guards its division, so every family stays populated
        // with parseable zeros — never a NaN or a dangling TYPE header.
        for (q, p) in [("0.5", 50.0), ("0.99", 99.0), ("0.999", 99.9)] {
            lat.sample_f(
                &[("tenant", t.name.as_str()), ("qos", cfg.mode.label()), ("quantile", q)],
                t.latency.percentile(p).as_secs_f64(),
            );
        }
        vaf.sample_f(&labels, t.vaf());
        exposed.sample_u(&labels, t.insecure_ticks);
        if cfg.anatomy {
            for s in Stage::ALL {
                let labels =
                    [("tenant", t.name.as_str()), ("qos", cfg.mode.label()), ("stage", s.label())];
                blame.sample_u(&labels, t.blame[s.idx()].0);
                tail_blame.sample_u(&labels, t.tail_blame[s.idx()].0);
            }
        }
    }
    for fam in [requests, pages, lat, vaf, exposed] {
        fam.render_into(&mut out).expect("tenant families are non-empty: >=1 tenant");
    }
    if cfg.anatomy {
        for fam in [blame, tail_blame] {
            fam.render_into(&mut out).expect("blame families are non-empty when anatomy is on");
        }
    }

    let mut info = LabeledFamily::new(
        "evanesco_fleet_device_info",
        "Per-device determinism digest (value is always 1; the digest is the label).",
        "gauge",
    );
    let mut dropped = LabeledFamily::new(
        "evanesco_fleet_device_trace_dropped_total",
        "Request traces evicted from a device's trace ring (capacity pressure; \
         0 when tracing is off or nothing was evicted).",
        "counter",
    );
    for d in &report.devices {
        let dev = d.device.to_string();
        let digest = format!("{:016x}", d.digest);
        info.sample_u(&[("device", dev.as_str()), ("digest", digest.as_str())], 1);
        dropped.sample_u(&[("device", dev.as_str())], d.trace_dropped);
    }
    for fam in [info, dropped] {
        fam.render_into(&mut out).expect("device families are non-empty: >=1 device");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_fleet;

    #[test]
    fn scrape_is_well_formed_and_tenant_labeled() {
        let mut cfg = FleetConfig::noisy_neighbor_demo(2, 2, 200, 3);
        cfg.anatomy = true;
        let report = run_fleet(&cfg);
        let s = render_fleet(&cfg, &report);
        for fam in [
            "evanesco_fleet_devices",
            "evanesco_fleet_shards",
            "evanesco_fleet_tenant_requests_total",
            "evanesco_fleet_tenant_pages_total",
            "evanesco_fleet_tenant_latency_seconds",
            "evanesco_fleet_tenant_vaf",
            "evanesco_fleet_tenant_insecure_ticks_total",
            "evanesco_fleet_tenant_blame_ns_total",
            "evanesco_fleet_tenant_tail_blame_ns_total",
            "evanesco_fleet_device_info",
            "evanesco_fleet_device_trace_dropped_total",
        ] {
            assert!(s.contains(&format!("# TYPE {fam}")), "missing family {fam}");
        }
        assert!(s.contains("tenant=\"storm\""));
        assert!(s.contains("quantile=\"0.999\""));
        assert!(s.contains("device=\"1\""));
        assert!(s.contains("stage=\"sanitize_interference\""));
        assert!(s.contains("evanesco_fleet_device_trace_dropped_total{device=\"0\"} 0"));
        // Every non-comment line is `name{...} value` with a parseable value.
        for line in s.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad sample value in {line:?}"));
        }
    }

    #[test]
    fn blame_families_are_absent_when_anatomy_is_off() {
        let cfg = FleetConfig::noisy_neighbor_demo(1, 1, 100, 3);
        let report = run_fleet(&cfg);
        let s = render_fleet(&cfg, &report);
        assert!(!s.contains("evanesco_fleet_tenant_blame_ns_total"));
        assert!(!s.contains("evanesco_fleet_tenant_tail_blame_ns_total"));
        assert!(s.contains("evanesco_fleet_device_trace_dropped_total"), "drops always render");
    }

    #[test]
    fn zero_request_tenants_scrape_as_explicit_finite_zeros() {
        let mut cfg = FleetConfig::noisy_neighbor_demo(1, 2, 150, 3);
        cfg.anatomy = true;
        // Tenant 2 offers nothing: zero share means the popularity CDF
        // never selects it, so it ends the run with zero requests.
        cfg.traffic.tenants[2].offered_share = 0.0;
        cfg.traffic.tenants[2].name = "idle".into();
        let report = run_fleet(&cfg);
        let idle = &report.tenants[2];
        assert_eq!(idle.requests, 0, "tenant with zero share gets zero requests");
        let s = render_fleet(&cfg, &report);
        assert!(!s.contains("NaN"), "no NaN leaks into the exposition");
        // Every family still carries an explicit sample for the idle
        // tenant — no dangling TYPE headers, no missing series.
        for fam in [
            "evanesco_fleet_tenant_requests_total",
            "evanesco_fleet_tenant_pages_total",
            "evanesco_fleet_tenant_vaf",
            "evanesco_fleet_tenant_insecure_ticks_total",
            "evanesco_fleet_tenant_blame_ns_total",
        ] {
            assert!(
                s.contains(&format!("{fam}{{tenant=\"idle\"")),
                "family {fam} has an explicit sample for the idle tenant"
            );
        }
        for q in ["0.5", "0.99", "0.999"] {
            let line = format!(
                "evanesco_fleet_tenant_latency_seconds{{tenant=\"idle\",qos=\"fifo\",quantile=\"{q}\"}} 0"
            );
            assert!(s.contains(&line), "idle tenant quantile {q} is an explicit zero");
        }
        for line in s.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            let v = value.parse::<f64>().unwrap_or_else(|_| panic!("bad value in {line:?}"));
            assert!(v.is_finite(), "non-finite sample in {line:?}");
        }
    }

    #[test]
    fn hostile_tenant_names_cannot_inject_series() {
        let mut cfg = FleetConfig::noisy_neighbor_demo(1, 1, 100, 3);
        cfg.traffic.tenants[1].name = "evil\"} 1\ninjected_metric 2".into();
        let report = run_fleet(&cfg);
        let s = render_fleet(&cfg, &report);
        assert!(!s.contains("\ninjected_metric"), "label value escaped, not spliced");
        assert!(s.contains("evil\\\"} 1\\ninjected_metric 2"));
    }
}

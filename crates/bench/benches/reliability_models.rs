//! Microbenchmarks of the reliability models backing the chip-level
//! figures: analytic RBER evaluation, Monte-Carlo wordline simulation and
//! the OSR destruction model.

use criterion::{criterion_group, criterion_main, Criterion};
use evanesco_nand::cell::{CellTech, PageType};
use evanesco_nand::noise::{adjusted_states, Condition};
use evanesco_nand::osr::{osr_experiment, OsrParams};
use evanesco_nand::rber::{page_rber, worst_page_rber};
use evanesco_nand::vth::WordlineSim;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("reliability_models");

    g.bench_function("analytic_page_rber", |b| {
        let dists = adjusted_states(CellTech::Tlc, Condition::one_year_retention(1000));
        b.iter(|| black_box(page_rber(black_box(&dists), PageType::Msb)));
    });

    g.bench_function("analytic_worst_page_rber", |b| {
        let dists = adjusted_states(CellTech::Tlc, Condition::one_year_retention(1000));
        b.iter(|| black_box(worst_page_rber(black_box(&dists))));
    });

    g.bench_function("mc_wordline_program_and_count", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let dists = adjusted_states(CellTech::Tlc, Condition::cycled(1000));
        b.iter(|| {
            let mut wl = WordlineSim::with_default_cells(CellTech::Tlc);
            wl.program_random(&mut rng, &dists);
            black_box(wl.count_errors(PageType::Msb))
        });
    });

    g.bench_function("osr_tlc_experiment", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| {
            black_box(osr_experiment(
                &mut rng,
                CellTech::Tlc,
                Condition::cycled(1000),
                &[PageType::Lsb, PageType::Csb],
                PageType::Msb,
                &OsrParams::default(),
            ))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);

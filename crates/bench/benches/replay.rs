//! End-to-end replay throughput: how many simulated host operations per
//! wall-clock second the full stack (generator → FTL → timed chips)
//! sustains under each Table-2 workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evanesco_bench::Scale;
use evanesco_ftl::SanitizePolicy;
use evanesco_ssd::Emulator;
use evanesco_workloads::generate::generate;
use evanesco_workloads::replay::replay;
use evanesco_workloads::WorkloadSpec;

fn bench_replay(c: &mut Criterion) {
    let scale = Scale::smoke();
    let cfg = scale.ssd_config();
    let logical = cfg.ftl.logical_pages();
    let mut g = c.benchmark_group("replay_secssd");
    g.sample_size(10);
    for spec in WorkloadSpec::table2() {
        let trace = generate(&spec, logical, scale.main_write_pages(logical), scale.seed);
        g.bench_with_input(BenchmarkId::from_parameter(spec.name), &trace, |b, trace| {
            b.iter(|| {
                let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
                replay(&mut ssd, trace)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);

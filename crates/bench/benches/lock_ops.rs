//! Microbenchmarks of the Evanesco lock mechanism: `pLock`/`bLock`
//! execution, lock-gated reads, the majority decoder and the pAP flag
//! device model.

use criterion::{criterion_group, criterion_main, Criterion};
use evanesco_core::chip::EvanescoChip;
use evanesco_core::majority::majority;
use evanesco_core::pap::{PapConfig, PapFlag};
use evanesco_nand::chip::PageData;
use evanesco_nand::geometry::{BlockId, Geometry, Ppa};
use evanesco_nand::timing::Nanos;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_locks(c: &mut Criterion) {
    let geom = Geometry::paper_tlc_with_blocks(8);
    let ppb = geom.pages_per_block();
    let mut g = c.benchmark_group("evanesco_locks");

    g.bench_function("p_lock", |b| {
        let mut chip = EvanescoChip::new(geom);
        for p in 0..ppb {
            chip.program(Ppa::new(0, p), PageData::tagged(p as u64)).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            chip.p_lock(Ppa::new(0, (i % ppb as u64) as u32)).unwrap();
            i += 1;
        });
    });

    g.bench_function("b_lock_plus_erase_cycle", |b| {
        let mut chip = EvanescoChip::new(geom);
        chip.program(Ppa::new(0, 0), PageData::tagged(1)).unwrap();
        b.iter(|| {
            chip.b_lock(BlockId(0)).unwrap();
            chip.erase(BlockId(0), Nanos::ZERO).unwrap();
            chip.program(Ppa::new(0, 0), PageData::tagged(1)).unwrap();
        });
    });

    g.bench_function("gated_read_locked", |b| {
        let mut chip = EvanescoChip::new(geom);
        chip.program(Ppa::new(0, 0), PageData::tagged(1)).unwrap();
        chip.p_lock(Ppa::new(0, 0)).unwrap();
        b.iter(|| black_box(chip.read(Ppa::new(0, 0)).unwrap()));
    });

    g.bench_function("majority_9", |b| {
        let bits = [true, true, false, true, true, false, true, false, true];
        b.iter(|| black_box(majority(black_box(&bits))));
    });

    g.bench_function("pap_flag_program_and_age", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = PapConfig::paper();
        b.iter(|| {
            let mut flag = PapFlag::erased(cfg.k);
            flag.program(&mut rng, cfg.point);
            flag.age(&mut rng, 365.0);
            black_box(flag.read_disabled())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_locks);
criterion_main!(benches);

//! FTL throughput under each sanitization policy — the wall-clock
//! counterpart of Figure 14: how expensive each policy is to *simulate*,
//! dominated by the same relocation traffic that costs the paper's SSDs
//! their IOPS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evanesco_ftl::config::FtlConfig;
use evanesco_ftl::executor::MemExecutor;
use evanesco_ftl::ftl::Ftl;
use evanesco_ftl::observer::NullObserver;
use evanesco_ftl::SanitizePolicy;

fn policy_label(p: SanitizePolicy) -> String {
    p.to_string()
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ftl_secured_overwrite");
    g.sample_size(10);
    for policy in [
        SanitizePolicy::none(),
        SanitizePolicy::evanesco(),
        SanitizePolicy::evanesco_no_block(),
        SanitizePolicy::scrub(),
        SanitizePolicy::erase_based(),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(policy_label(policy)),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let cfg = FtlConfig::tiny_for_tests();
                    let mut ftl = Ftl::new(cfg, policy);
                    let mut ex = MemExecutor::new(cfg.geometry, cfg.n_chips);
                    let logical = ftl.logical_pages();
                    for l in 0..logical {
                        ftl.write(&mut ex, &mut NullObserver, l, true, l);
                    }
                    let mut x = 1u64;
                    for i in 0..400u64 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        ftl.write(&mut ex, &mut NullObserver, x % logical, true, 1_000 + i);
                    }
                    ftl.stats()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);

//! Criterion twin of the `hostperf` experiment: wall-clock throughput of
//! the scheduled-replay hot loop (generator trace → scheduler → FTL →
//! device-flag data plane) at the gate queue depths.
//!
//! The experiment binary (`experiments hostperf`) owns the machine-
//! normalized gate; this bench exists for interactive profiling
//! (`cargo bench --bench hostperf`) and as the CI smoke that the timed
//! region still builds and runs under criterion's harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evanesco_bench::experiments::hostperf::{device, replay, QUEUE_DEPTHS};
use evanesco_bench::experiments::scheduler::mixed_trace;
use evanesco_bench::Scale;

fn bench_hostperf(c: &mut Criterion) {
    let scale = Scale::smoke();
    let logical = device(&scale).logical_pages();
    let requests = ((logical / 2) as usize).clamp(512, 20_000);
    let ops = mixed_trace(logical, requests, scale.seed);
    let mut g = c.benchmark_group("hostperf_replay");
    g.sample_size(10);
    for &qd in &QUEUE_DEPTHS {
        g.bench_with_input(BenchmarkId::new("qd", qd), &qd, |b, &qd| {
            b.iter(|| replay(&scale, &ops, qd));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hostperf);
criterion_main!(benches);

//! Microbenchmarks of the behavioral NAND chip: the paper's Table-of-
//! timing-constants counterpart — how fast the *simulator* executes the
//! basic operations (simulated latencies are constants; this measures
//! model overhead, which bounds experiment wall-clock time).

use criterion::{criterion_group, criterion_main, Criterion};
use evanesco_nand::chip::{Chip, PageData};
use evanesco_nand::geometry::{BlockId, Geometry, Ppa};
use evanesco_nand::timing::Nanos;
use std::hint::black_box;

fn bench_program_read_erase(c: &mut Criterion) {
    let geom = Geometry::paper_tlc_with_blocks(8);
    let mut g = c.benchmark_group("nand_chip");

    g.bench_function("program_page", |b| {
        let mut chip = Chip::new(geom);
        let ppb = geom.pages_per_block();
        let mut i = 0u64;
        b.iter(|| {
            let block = (i / ppb as u64) % geom.blocks as u64;
            let page = (i % ppb as u64) as u32;
            if page == 0 {
                chip.erase(BlockId(block as u32), Nanos(i)).unwrap();
            }
            chip.program(Ppa::new(block as u32, page), PageData::tagged(i)).unwrap();
            i += 1;
        });
    });

    g.bench_function("read_page", |b| {
        let mut chip = Chip::new(geom);
        chip.program(Ppa::new(0, 0), PageData::tagged(7)).unwrap();
        b.iter(|| black_box(chip.read(Ppa::new(0, 0)).unwrap()));
    });

    g.bench_function("erase_block", |b| {
        let mut chip = Chip::new(geom);
        let mut i = 0u64;
        b.iter(|| {
            chip.erase(BlockId((i % geom.blocks as u64) as u32), Nanos(i)).unwrap();
            i += 1;
        });
    });
    g.finish();
}

criterion_group!(benches, bench_program_read_erase);
criterion_main!(benches);

//! # evanesco-bench
//!
//! The benchmark/experiment harness of the Evanesco (ASPLOS 2020)
//! reproduction. For **every table and figure** in the paper's evaluation
//! there is a generator here that re-runs the experiment and prints the
//! same rows/series (see `DESIGN.md` for the experiment index):
//!
//! | artifact | function |
//! |---|---|
//! | Table 1  | [`experiments::versioning::table1`] |
//! | Table 2  | [`experiments::background::table2`] |
//! | Figure 2 | [`experiments::background::fig2`] |
//! | Figure 4 | [`experiments::versioning::fig4`] |
//! | Figure 6 | [`experiments::reliability::fig6`] |
//! | Figure 9 | [`experiments::dse::fig9`] |
//! | Figure 10 | [`experiments::reliability::fig10`] |
//! | Figure 11(b) | [`experiments::reliability::fig11`] |
//! | Figure 12 | [`experiments::dse::fig12`] |
//! | Figure 14(a) | [`experiments::system::fig14a`] |
//! | Figure 14(b) | [`experiments::system::fig14b`] |
//! | Figure 14(c) | [`experiments::system::fig14c`] |
//! | §7 headline numbers | [`experiments::system::headline`] |
//! | §5.5 overhead | [`experiments::background::overhead`] |
//!
//! Run everything with `cargo run --release -p evanesco-bench --bin
//! experiments -- all`. Criterion micro-benchmarks live under `benches/`.

pub mod experiments;
pub mod scale;

pub use scale::Scale;

/// Runs one named experiment and returns its text output.
///
/// # Panics
///
/// Panics on an unknown experiment name; see [`EXPERIMENT_NAMES`].
pub fn run_experiment(name: &str, scale: &Scale) -> String {
    match name {
        "table1" => experiments::versioning::table1(scale),
        "table2" => experiments::background::table2(scale),
        "fig2" => experiments::background::fig2(),
        "fig4" => experiments::versioning::fig4(scale),
        "fig6" => experiments::reliability::fig6(scale),
        "fig9" => experiments::dse::fig9(),
        "fig10" => experiments::reliability::fig10(),
        "fig11" => experiments::reliability::fig11(),
        "fig12" => experiments::dse::fig12(),
        "fig14a" => experiments::system::fig14a(scale),
        "fig14b" => experiments::system::fig14b(scale),
        "fig14c" => experiments::system::fig14c(scale),
        "headline" => experiments::system::headline(scale),
        "overhead" => experiments::background::overhead(),
        "ablation-k" => experiments::ablation::ablation_k(),
        "ablation-blocktrig" => experiments::ablation::ablation_blocktrig(scale),
        "ablation-gc" => experiments::ablation::ablation_gc(scale),
        "security-flagaging" => experiments::security::security_flagaging(),
        "breakdown" => experiments::breakdown::breakdown(scale),
        "delete-latency" => experiments::latency::delete_latency(),
        "ablation-lazy" => experiments::ablation::ablation_lazy(scale),
        "scheduler" => experiments::scheduler::scheduler(scale, "custom"),
        "trace" => experiments::tracing::trace(scale, "custom"),
        "report" => experiments::report::report(scale, "custom"),
        "campaign" => experiments::campaign::campaign(scale, "custom"),
        "hostperf" => experiments::hostperf::hostperf(scale, "custom"),
        "chaos" => experiments::chaos::chaos(scale, "custom"),
        "fleet" => experiments::fleet::fleet(scale, "custom"),
        "anatomy" => experiments::anatomy::anatomy(scale, "custom"),
        other => panic!("unknown experiment '{other}'; known: {EXPERIMENT_NAMES:?}"),
    }
}

/// Whether [`run_experiment`] accepts `name` (for up-front CLI
/// validation, so a typo is reported before hours of runs, not after).
pub fn is_experiment_name(name: &str) -> bool {
    EXPERIMENT_NAMES.contains(&name)
}

/// All experiment names accepted by [`run_experiment`], in report order.
pub const EXPERIMENT_NAMES: [&str; 29] = [
    "table2",
    "fig2",
    "table1",
    "fig4",
    "fig6",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "overhead",
    "fig14a",
    "fig14b",
    "fig14c",
    "headline",
    "breakdown",
    "delete-latency",
    "ablation-k",
    "ablation-blocktrig",
    "ablation-lazy",
    "ablation-gc",
    "security-flagaging",
    "scheduler",
    "trace",
    "report",
    "campaign",
    "hostperf",
    "chaos",
    "fleet",
    "anatomy",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheap_experiments_run_by_name() {
        let scale = Scale::smoke();
        for name in ["table2", "fig2", "fig9", "fig10", "fig11", "fig12", "overhead", "ablation-k"]
        {
            let out = run_experiment(name, &scale);
            assert!(!out.is_empty(), "{name} produced no output");
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_name_panics() {
        run_experiment("fig99", &Scale::smoke());
    }
}

//! Fleet-scale noisy-neighbor matrix (`BENCH_fleet.json`).
//!
//! Runs a small fleet of emulated SSDs through every cell of
//! {tenant mix} × {QoS policy} × {sanitization policy} and reports
//! per-tenant p50/p99/p999 latency plus sanitization-exposure gauges.
//! The interesting cell is the sanitization storm: a noisy neighbor
//! issuing large secure overwrites and trims oversubscribes the device,
//! and the victims' tail latency shows whether QoS isolation works.
//!
//! The `fleet` subcommand of the `experiments` binary renders the
//! matrix, writes `BENCH_fleet.json`, and **fails (exit 1)** on either:
//!
//! * **determinism breach** — the same seed must produce byte-identical
//!   per-device digests across shard counts {1, 2, 4} and a rerun
//!   (thread interleaving must leave no trace);
//! * **QoS inversion** — under the storm, the worst victim p99 with
//!   shaping on must be at least [`GATE_MIN_P99_SEPARATION`]× lower
//!   than with QoS off (margin chosen above the latency histogram's
//!   √2 bucket resolution, see `evanesco_ssd::metrics`).
//!
//! The JSON artifact is uploaded by CI but **not** byte-diffed: the
//! traffic generator uses `libm` transcendentals (`sin`, `ln`) whose
//! last-bit behavior is platform-dependent. The determinism gate is
//! in-binary, where digests compare exactly.

use crate::scale::Scale;
use evanesco_fleet::{run_fleet, FleetConfig, QosMode, TenantQos};
use evanesco_ftl::SanitizePolicy;
use evanesco_nand::timing::Nanos;
use evanesco_ssd::SsdConfig;
use evanesco_workloads::TrafficConfig;
use std::fmt::Write as _;

/// Shard counts the determinism gate sweeps.
pub const GATE_SHARDS: [usize; 3] = [1, 2, 4];

/// Minimum factor by which shaping must cut the worst victim p99 under
/// the sanitization storm. The latency histogram's buckets are √2-wide,
/// so any gate under 2× could pass or fail on bucket rounding alone.
pub const GATE_MIN_P99_SEPARATION: f64 = 2.0;

/// One tenant's row in a matrix cell.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// Tenant name.
    pub name: String,
    /// Requests fleet-wide.
    pub requests: u64,
    /// Median end-to-end latency.
    pub p50: Nanos,
    /// 99th-percentile latency.
    pub p99: Nanos,
    /// 99.9th-percentile latency.
    pub p999: Nanos,
    /// Fleet-wide version amplification factor.
    pub vaf: f64,
    /// Fleet-wide insecure ticks (exposure time, logical).
    pub insecure_ticks: u64,
}

/// One cell of the matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Tenant mix name (`balanced` / `noisy`).
    pub mix: &'static str,
    /// QoS mode label (`fifo` / `shaped`).
    pub qos: &'static str,
    /// Sanitization policy label.
    pub policy: &'static str,
    /// Per-tenant rows, tenant order.
    pub tenants: Vec<TenantRow>,
    /// The fleet's determinism digest for this cell.
    pub fleet_digest: u64,
}

impl Cell {
    /// Worst p99 among victim tenants (everyone but the storm).
    pub fn worst_victim_p99(&self) -> Nanos {
        self.tenants
            .iter()
            .filter(|t| t.name != "storm")
            .map(|t| t.p99)
            .max()
            .unwrap_or(Nanos::ZERO)
    }
}

/// The determinism sweep's digests.
#[derive(Debug, Clone)]
pub struct DeterminismCheck {
    /// `(shards, fleet_digest)` per swept shard count.
    pub by_shards: Vec<(usize, u64)>,
    /// Digest of the rerun at the last shard count.
    pub rerun: u64,
}

impl DeterminismCheck {
    /// Violation strings (empty = pass).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let base = self.by_shards[0].1;
        for &(shards, d) in &self.by_shards[1..] {
            if d != base {
                v.push(format!(
                    "determinism: fleet digest {d:016x} at {shards} shards != {base:016x} at \
                     {} shard(s)",
                    self.by_shards[0].0
                ));
            }
        }
        if self.rerun != base {
            v.push(format!(
                "determinism: rerun digest {:016x} != first run {base:016x}",
                self.rerun
            ));
        }
        v
    }
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct FleetBench {
    /// Scale preset name (JSON provenance).
    pub scale_name: String,
    /// Devices per fleet run.
    pub devices: usize,
    /// Requests per device.
    pub requests_per_device: usize,
    /// All matrix cells.
    pub cells: Vec<Cell>,
    /// The shard/rerun byte-identity sweep.
    pub determinism: DeterminismCheck,
}

/// The per-device SSD every fleet cell runs on: the tiny 2-chip device
/// (fleet cells multiply it by `devices`, so each device stays small).
fn fleet_ssd() -> SsdConfig {
    let mut cfg = SsdConfig::tiny_for_tests();
    cfg.track_tags = false;
    cfg.stale_audit = false;
    cfg
}

/// Builds one cell's fleet config. The offered load is calibrated
/// against the device's nominal drain rate: victims alone run the
/// device at a comfortable fraction of capacity, while the storm tenant
/// (noisy mix only) oversubscribes it outright — so QoS-off shows real
/// noisy-neighbor damage and QoS-on has headroom to fix it.
fn cell_config(
    scale: &Scale,
    devices: usize,
    requests: usize,
    mix: &'static str,
    mode: QosMode,
    policy: SanitizePolicy,
    shards: usize,
) -> FleetConfig {
    let traffic = match mix {
        "noisy" => TrafficConfig::noisy_neighbor(3, requests, scale.seed),
        "balanced" => TrafficConfig::balanced(4, requests, scale.seed),
        other => panic!("unknown tenant mix '{other}'"),
    };
    let tenants = traffic.tenants.len();
    let mut cfg = FleetConfig {
        ssd: fleet_ssd(),
        policy,
        traffic,
        qos: vec![TenantQos::unlimited(); tenants],
        mode,
        devices,
        shards,
        qd: 8,
        anatomy: false,
    };
    let capacity_pages_per_sec = 1e9 / cfg.drain_ns_per_page() as f64;
    // ~1/6 of drain capacity in requests/s: victims (small requests,
    // minority share) stay well under capacity; the storm's 8-16-page
    // requests at 8x share alone exceed it.
    cfg.traffic.base_rate_per_sec = (capacity_pages_per_sec / 6.0).max(1.0);
    if mix == "noisy" {
        // Police the storm at ~20% of device capacity; give victims 4x
        // its weight in the fair-queue merge.
        cfg.qos[0] = TenantQos::limited(1, (capacity_pages_per_sec * 0.2).max(1.0) as u64, 64);
        for q in &mut cfg.qos[1..] {
            q.weight = 4;
        }
    }
    cfg
}

fn run_cell(
    scale: &Scale,
    devices: usize,
    requests: usize,
    mix: &'static str,
    mode: QosMode,
    policy: SanitizePolicy,
    policy_label: &'static str,
) -> Cell {
    let cfg = cell_config(scale, devices, requests, mix, mode, policy, 2);
    let report = run_fleet(&cfg);
    let tenants = report
        .tenants
        .iter()
        .map(|t| TenantRow {
            name: t.name.clone(),
            requests: t.requests,
            p50: t.latency.percentile(50.0),
            p99: t.latency.percentile(99.0),
            p999: t.latency.percentile(99.9),
            vaf: t.vaf(),
            insecure_ticks: t.insecure_ticks,
        })
        .collect();
    Cell {
        mix,
        qos: mode.label(),
        policy: policy_label,
        tenants,
        fleet_digest: report.fleet_digest,
    }
}

/// Runs the full matrix plus the determinism sweep.
pub fn run(scale: &Scale, scale_name: &str) -> FleetBench {
    let (devices, requests) = if scale.tiny_blocks { (3, 500) } else { (4, 2500) };
    let mut cells = Vec::new();
    for mix in ["balanced", "noisy"] {
        for mode in [QosMode::Fifo, QosMode::Shaped] {
            for (policy, label) in
                [(SanitizePolicy::evanesco(), "evanesco"), (SanitizePolicy::none(), "none")]
            {
                cells.push(run_cell(scale, devices, requests, mix, mode, policy, label));
            }
        }
    }
    // Determinism sweep on the storm cell (the most contended one).
    let mut by_shards = Vec::new();
    for shards in GATE_SHARDS {
        let cfg = cell_config(
            scale,
            devices,
            requests,
            "noisy",
            QosMode::Shaped,
            SanitizePolicy::evanesco(),
            shards,
        );
        by_shards.push((shards, run_fleet(&cfg).fleet_digest));
    }
    let rerun_cfg = cell_config(
        scale,
        devices,
        requests,
        "noisy",
        QosMode::Shaped,
        SanitizePolicy::evanesco(),
        *GATE_SHARDS.last().unwrap(),
    );
    let rerun = run_fleet(&rerun_cfg).fleet_digest;
    FleetBench {
        scale_name: scale_name.to_string(),
        devices,
        requests_per_device: requests,
        cells,
        determinism: DeterminismCheck { by_shards, rerun },
    }
}

impl FleetBench {
    /// The storm cell at a given QoS mode (evanesco policy).
    fn storm_cell(&self, qos: &str) -> &Cell {
        self.cells
            .iter()
            .find(|c| c.mix == "noisy" && c.qos == qos && c.policy == "evanesco")
            .expect("matrix always contains the storm cells")
    }

    /// The measured p99 improvement factor (fifo / shaped) for the worst
    /// victim under the storm.
    pub fn qos_separation(&self) -> f64 {
        let fifo = self.storm_cell("fifo").worst_victim_p99().0 as f64;
        let shaped = self.storm_cell("shaped").worst_victim_p99().0.max(1) as f64;
        fifo / shaped
    }

    /// All gate violations (empty = pass).
    pub fn violations(&self) -> Vec<String> {
        let mut v = self.determinism.violations();
        let sep = self.qos_separation();
        if sep < GATE_MIN_P99_SEPARATION {
            v.push(format!(
                "qos: worst victim p99 improved only {sep:.2}x under shaping \
                 (gate {GATE_MIN_P99_SEPARATION:.1}x)"
            ));
        }
        v
    }

    /// Human-readable matrix.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(out, "== Fleet: multi-tenant noisy-neighbor matrix ==").unwrap();
        writeln!(
            out,
            "{} devices x {} requests/device, scale {}",
            self.devices, self.requests_per_device, self.scale_name
        )
        .unwrap();
        writeln!(
            out,
            "{:>9} {:>7} {:>9} {:>11} {:>9} {:>11} {:>11} {:>11} {:>7} {:>9}",
            "mix",
            "qos",
            "policy",
            "tenant",
            "requests",
            "p50_us",
            "p99_us",
            "p999_us",
            "vaf",
            "insec_t"
        )
        .unwrap();
        for c in &self.cells {
            for t in &c.tenants {
                writeln!(
                    out,
                    "{:>9} {:>7} {:>9} {:>11} {:>9} {:>11.1} {:>11.1} {:>11.1} {:>7.2} {:>9}",
                    c.mix,
                    c.qos,
                    c.policy,
                    t.name,
                    t.requests,
                    t.p50.0 as f64 / 1e3,
                    t.p99.0 as f64 / 1e3,
                    t.p999.0 as f64 / 1e3,
                    t.vaf,
                    t.insecure_ticks,
                )
                .unwrap();
            }
        }
        let mut digests: Vec<String> = self
            .determinism
            .by_shards
            .iter()
            .map(|(s, d)| format!("{s} shard(s): {d:016x}"))
            .collect();
        digests.push(format!("rerun: {:016x}", self.determinism.rerun));
        writeln!(out, "determinism: {}", digests.join(", ")).unwrap();
        writeln!(
            out,
            "gate: victim p99 separation {:.2}x (minimum {:.1}x), determinism {} -> {}",
            self.qos_separation(),
            GATE_MIN_P99_SEPARATION,
            if self.determinism.violations().is_empty() { "byte-identical" } else { "BROKEN" },
            if self.violations().is_empty() { "PASS" } else { "FAIL" },
        )
        .unwrap();
        out
    }

    /// Machine-readable JSON (`BENCH_fleet.json`), hand-rendered — the
    /// build has no serde. Uploaded by CI, not byte-diffed (see module
    /// docs).
    pub fn to_json(&self) -> String {
        fn f(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.4}")
            } else {
                "0.0".to_string()
            }
        }
        let mut out = String::new();
        out.push_str("{\n");
        writeln!(out, "  \"bench\": \"fleet\",").unwrap();
        writeln!(out, "  \"scale\": \"{}\",", self.scale_name).unwrap();
        writeln!(out, "  \"devices\": {},", self.devices).unwrap();
        writeln!(out, "  \"requests_per_device\": {},", self.requests_per_device).unwrap();
        writeln!(
            out,
            "  \"gate\": {{\"min_p99_separation\": {}, \"p99_separation\": {}, \"pass\": {}}},",
            f(GATE_MIN_P99_SEPARATION),
            f(self.qos_separation()),
            self.violations().is_empty(),
        )
        .unwrap();
        let shard_digests = self
            .determinism
            .by_shards
            .iter()
            .map(|(s, d)| format!("{{\"shards\": {s}, \"digest\": \"{d:016x}\"}}"))
            .collect::<Vec<_>>()
            .join(", ");
        writeln!(
            out,
            "  \"determinism\": {{\"runs\": [{shard_digests}], \"rerun\": \"{:016x}\", \
             \"pass\": {}}},",
            self.determinism.rerun,
            self.determinism.violations().is_empty(),
        )
        .unwrap();
        writeln!(out, "  \"cells\": [").unwrap();
        for (i, c) in self.cells.iter().enumerate() {
            writeln!(
                out,
                "    {{\"mix\": \"{}\", \"qos\": \"{}\", \"policy\": \"{}\", \
                 \"fleet_digest\": \"{:016x}\", \"tenants\": [",
                c.mix, c.qos, c.policy, c.fleet_digest
            )
            .unwrap();
            for (j, t) in c.tenants.iter().enumerate() {
                write!(
                    out,
                    "      {{\"tenant\": \"{}\", \"requests\": {}, \"p50_ns\": {}, \
                     \"p99_ns\": {}, \"p999_ns\": {}, \"vaf\": {}, \"insecure_ticks\": {}}}",
                    t.name,
                    t.requests,
                    t.p50.0,
                    t.p99.0,
                    t.p999.0,
                    f(t.vaf),
                    t.insecure_ticks,
                )
                .unwrap();
                out.push_str(if j + 1 < c.tenants.len() { ",\n" } else { "\n" });
            }
            write!(out, "    ]}}").unwrap();
            out.push_str(if i + 1 < self.cells.len() { ",\n" } else { "\n" });
        }
        writeln!(out, "  ]").unwrap();
        out.push_str("}\n");
        out
    }
}

/// The `fleet` experiment as printable text (no file output, no gate;
/// the `experiments` binary's subcommand adds both).
pub fn fleet(scale: &Scale, scale_name: &str) -> String {
    run(scale, scale_name).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_passes_both_gates_with_headroom() {
        let b = run(&Scale::smoke(), "smoke");
        assert_eq!(b.cells.len(), 8, "2 mixes x 2 qos x 2 policies");
        assert!(b.determinism.violations().is_empty(), "{:?}", b.determinism);
        // The acceptance bar: the gate at 2x must have real headroom.
        assert!(b.qos_separation() >= 4.0, "victim p99 separation only {:.2}x", b.qos_separation());
        assert!(b.violations().is_empty(), "{:?}", b.violations());
        // Every tenant in every cell saw traffic and a latency.
        for c in &b.cells {
            for t in &c.tenants {
                assert!(t.requests > 0, "{}/{}/{}: silent tenant", c.mix, c.qos, t.name);
                assert!(t.p99 >= t.p50);
                assert!(t.p999 >= t.p99);
            }
        }
        // Under the storm with sanitization off, exposure is nonzero;
        // with Evanesco's locks it stays dramatically lower.
        let exposed = |policy: &str| -> u64 {
            b.cells
                .iter()
                .filter(|c| c.mix == "noisy" && c.policy == policy)
                .flat_map(|c| &c.tenants)
                .map(|t| t.insecure_ticks)
                .sum()
        };
        assert!(exposed("none") > 0, "the insecure baseline shows no exposure");
        assert!(
            exposed("evanesco") < exposed("none") / 10,
            "evanesco {} vs none {}",
            exposed("evanesco"),
            exposed("none")
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let b = run(&Scale::smoke(), "smoke");
        let j = b.to_json();
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        assert_eq!(j.matches("\"mix\":").count(), 8);
        assert!(j.contains("\"pass\": true"));
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "unbalanced braces");
    }
}

//! Security experiment: the end-to-end consequence of the flag-cell
//! design-space choices (Figures 9(d)/12(b) turned into an attack).
//!
//! A locked page stays sanitized only as long as its physical flag cells
//! hold their programmed state. This experiment locks a population of
//! pages under several flag configurations, ages the chip, and counts how
//! many deleted pages a raw-chip attacker recovers — zero for the paper's
//! selected parameters, catastrophically many for the rejected corners.

use evanesco_core::bap::BapConfig;
use evanesco_core::calibration::DesignPoint;
use evanesco_core::chip::EvanescoChip;
use evanesco_core::pap::PapConfig;
use evanesco_core::threat::Attacker;
use evanesco_nand::chip::PageData;
use evanesco_nand::geometry::{Geometry, Ppa};
use std::fmt::Write;

fn leak_fraction(pap: PapConfig, bap: BapConfig, age_days: f64, seed: u64) -> f64 {
    let geom = Geometry::small_tlc();
    let mut chip = EvanescoChip::new(geom);
    chip.enable_device_flags(pap, bap, seed);
    let pages = geom.pages_per_block();
    let mut tags = Vec::new();
    for b in 0..4u32 {
        for p in 0..pages {
            let tag = (b as u64) << 32 | p as u64;
            chip.program(Ppa::new(b, p), PageData::tagged(tag)).unwrap();
            tags.push(tag);
        }
        // Blocks 0-1 sanitized page-by-page, 2-3 with bLock.
        if b < 2 {
            for p in 0..pages {
                chip.p_lock(Ppa::new(b, p)).unwrap();
            }
        } else {
            chip.b_lock(evanesco_nand::geometry::BlockId(b)).unwrap();
        }
    }
    chip.age_flags(age_days);
    let attacker = Attacker::new();
    let recovered = attacker.recoverable_tags(&mut chip);
    recovered.iter().filter(|t| tags.contains(t)).count() as f64 / tags.len() as f64
}

/// The flag-aging attack table.
pub fn security_flagaging() -> String {
    let mut out = String::new();
    writeln!(out, "== Security: deleted-data recovery vs flag design point and age ==").unwrap();
    writeln!(out, "(4 blocks of locked pages; half pLock'd, half bLock'd; raw-chip attacker)")
        .unwrap();
    writeln!(out, "\n{:<34} {:>10} {:>10} {:>10}", "configuration", "fresh", "1 year", "5 years")
        .unwrap();
    let configs: [(&str, PapConfig, BapConfig); 4] = [
        ("paper: pAP(Vp4,100) bAP(Vb6,300)", PapConfig::paper(), BapConfig::paper()),
        (
            "weak pAP (vi): (Vp2,200)",
            PapConfig { k: 9, point: DesignPoint::new(2, 200) },
            BapConfig::paper(),
        ),
        (
            "weak bAP (vi): (Vb5,200)",
            PapConfig::paper(),
            BapConfig { point: DesignPoint::new(5, 200) },
        ),
        (
            "paper points but k = 1",
            PapConfig { k: 1, point: DesignPoint::new(4, 100) },
            BapConfig::paper(),
        ),
    ];
    for (name, pap, bap) in configs {
        write!(out, "{:<34}", name).unwrap();
        for (i, age) in [0.0, 365.0, 5.0 * 365.0].into_iter().enumerate() {
            let f = leak_fraction(pap, bap, age, 40 + i as u64);
            write!(out, "{:>9.1}%", 100.0 * f).unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(
        out,
        "\nthe paper's DSE selections keep recovery at 0% through the 5-year\n\
         requirement; the rejected corners re-expose deleted data as the flag\n\
         cells detrap — this is why Figures 9(d)/12(b) gate the design."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_recovers_nothing_even_aged() {
        assert_eq!(leak_fraction(PapConfig::paper(), BapConfig::paper(), 5.0 * 365.0, 1), 0.0);
    }

    #[test]
    fn weak_bap_exposes_block_locked_data() {
        let weak = BapConfig { point: DesignPoint::new(5, 200) };
        let f = leak_fraction(PapConfig::paper(), weak, 365.0, 2);
        // The two bLock'd blocks (half the population) reopen.
        assert!(f >= 0.49, "leak fraction {f}");
    }

    #[test]
    fn table_mentions_all_configs() {
        let s = security_flagaging();
        assert!(s.contains("paper: pAP"));
        assert!(s.contains("weak pAP"));
        assert!(s.contains("weak bAP"));
        assert!(s.contains("k = 1"));
    }
}

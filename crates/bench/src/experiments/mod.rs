//! One module per group of paper artifacts. Every public function returns
//! the regenerated table/figure as printable text, so the `experiments`
//! binary prints them and integration tests assert on their shape.

pub mod ablation;
pub mod anatomy;
pub mod background;
pub mod breakdown;
pub mod campaign;
pub mod chaos;
pub mod dse;
pub mod fleet;
pub mod hostperf;
pub mod latency;
pub mod reliability;
pub mod report;
pub mod scheduler;
pub mod security;
pub mod system;
pub mod tracing;
pub mod versioning;

//! The checkpointed aging campaign (`BENCH_campaign.json`).
//!
//! A campaign runs one long secure workload as a chain of *segments*,
//! serializing the complete device state to a checkpoint between
//! segments ([`Emulator::save_checkpoint`]) and rebuilding it from the
//! bytes before the next one ([`Emulator::restore_checkpoint`]) — the
//! way a multi-day aging study actually runs, with the process stopped
//! and restarted between sittings. Between segments the device "rests"
//! powered off: physical pAP/bAP flag cells lose charge
//! ([`Emulator::age_flags`]), so later segments see the paper's §5
//! retention-degraded flag margins on top of accumulated P/E wear.
//!
//! The sweep crosses the three aging axes of the paper's reliability
//! discussion: P/E wear (write volume per segment), `pLock` flag
//! success (per-command verify-failure probability plus physical flag
//! decay), and spare-reserve drift (erase failures retiring blocks
//! toward `SpareLow`/`ReadOnly`).
//!
//! **The gate:** every scenario is run twice — chained through
//! checkpoints, and uninterrupted in one process — and the two final
//! device states must be *byte-identical* (same checkpoint bytes, same
//! Prometheus scrape). Any divergence fails the `campaign` subcommand
//! with exit 1. The per-process segment mode (`--segment K`) is what CI
//! uses to prove the same equivalence across real process restarts.

use crate::scale::Scale;
use evanesco_core::bap::BapConfig;
use evanesco_core::pap::PapConfig;
use evanesco_ftl::config::FaultConfig;
use evanesco_ftl::SanitizePolicy;
use evanesco_nand::timing::Nanos;
use evanesco_ssd::Emulator;
use evanesco_workloads::generate::generate;
use evanesco_workloads::trace::{Trace, TraceOp};
use evanesco_workloads::WorkloadSpec;
use std::fmt::Write as _;

/// One point of the aging sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingScenario {
    /// Scenario name (CLI `--scenario` key).
    pub name: &'static str,
    /// Per-command `pLock` verify-failure probability (the fault-model
    /// axis of flag success; the physical axis is `rest_days`).
    pub plock_fail: f64,
    /// Erase-failure probability — each hard failure retires a block,
    /// draining the spare reserve toward `SpareLow`/`ReadOnly`.
    pub erase_fail: f64,
    /// Powered-off retention between segments, in days: pAP/bAP cells
    /// decay while the campaign process is stopped.
    pub rest_days: f64,
    /// Simulate physical flag cells (required for `rest_days` to bite).
    pub device_flags: bool,
}

/// The sweep grid: a pristine device, a mid-life device, and a worn
/// device near the end of the paper's 3-month retention window.
pub fn scenarios() -> [AgingScenario; 3] {
    [
        AgingScenario {
            name: "fresh",
            plock_fail: 0.0,
            erase_fail: 0.0,
            rest_days: 0.0,
            device_flags: false,
        },
        AgingScenario {
            name: "midlife",
            plock_fail: 0.05,
            erase_fail: 0.0,
            rest_days: 30.0,
            device_flags: true,
        },
        AgingScenario {
            name: "worn",
            plock_fail: 0.25,
            erase_fail: 0.005,
            rest_days: 90.0,
            device_flags: true,
        },
    ]
}

/// Looks up a scenario by its CLI name.
pub fn scenario_by_name(name: &str) -> Option<AgingScenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

/// The scenario the per-segment CLI mode uses when `--scenario` is not
/// given: mid-life exercises flag aging and fault draws without the
/// worn scenario's runtime.
pub fn default_scenario() -> AgingScenario {
    scenario_by_name("midlife").expect("midlife is in the grid")
}

/// A fresh campaign device for `scenario`: the scale's SSD with the
/// scenario's fault axes dialed in, physical flags when requested, and
/// the telemetry ring armed so every segment emits windowed samples.
pub fn fresh_device(scale: &Scale, scenario: &AgingScenario) -> Emulator {
    let mut cfg = scale.ssd_config();
    cfg.ftl.faults = FaultConfig {
        plock_fail: scenario.plock_fail,
        erase_fail: scenario.erase_fail,
        seed: scale.seed ^ 0xA61B,
        ..FaultConfig::none()
    };
    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    if scenario.device_flags {
        ssd.enable_device_flags(PapConfig::paper(), BapConfig::paper(), scale.seed);
    }
    ssd.enable_gauges();
    ssd.enable_timeseries(Nanos::from_micros(500), 256);
    ssd
}

/// The campaign workload: the paper's most overwrite-heavy trace
/// (DBServer), regenerated deterministically by every process from
/// `(scale, logical space)` — segments slice it by op index, so no
/// trace state needs to travel in the checkpoint.
pub fn build_trace(scale: &Scale, logical_pages: u64) -> Trace {
    generate(
        &WorkloadSpec::db_server(),
        logical_pages,
        scale.main_write_pages(logical_pages),
        scale.seed,
    )
}

fn apply(ssd: &mut Emulator, op: &TraceOp) {
    match *op {
        TraceOp::Write { lpa, npages, secure, .. } => {
            let _ = ssd.write(lpa, npages, secure);
        }
        TraceOp::Read { lpa, npages } => {
            let _ = ssd.read(lpa, npages);
        }
        TraceOp::Trim { lpa, npages, .. } => {
            ssd.trim(lpa, npages);
        }
    }
}

/// The measured-phase op range of segment `k` of `segments`.
fn bounds(total: usize, segments: usize, k: usize) -> (usize, usize) {
    (total * k / segments, total * (k + 1) / segments)
}

/// Runs segment `k` of `segments` on `ssd` (fresh for `k == 0`,
/// restored from the previous segment's checkpoint otherwise):
/// prefill on the first segment, the powered-off flag rest on later
/// ones, then this segment's slice of the measured phase, closing with
/// a telemetry sample so each segment contributes its own window.
pub fn run_segment(
    ssd: &mut Emulator,
    trace: &Trace,
    scenario: &AgingScenario,
    segments: usize,
    k: usize,
) {
    if k == 0 {
        for op in &trace.prefill {
            apply(ssd, op);
        }
    } else {
        ssd.age_flags(scenario.rest_days);
    }
    let (lo, hi) = bounds(trace.ops.len(), segments, k);
    for op in &trace.ops[lo..hi] {
        apply(ssd, op);
    }
    ssd.sample_timeseries_now();
}

/// What one segment looked like from the outside (cumulative counters
/// at its end).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentDigest {
    /// Segment index.
    pub segment: usize,
    /// Host ops completed so far.
    pub host_ops: u64,
    /// Simulated clock at segment end (ns).
    pub sim_ns: u64,
    /// Telemetry windows closed so far.
    pub windows: u64,
    /// Block erases so far.
    pub erases: u64,
    /// Blocks retired to the grown-bad table so far.
    pub retired: u64,
    /// Degraded mode at segment end (`Normal`/`SpareLow`/`ReadOnly`).
    pub mode: String,
}

fn digest(ssd: &Emulator, segment: usize) -> SegmentDigest {
    let r = ssd.result();
    SegmentDigest {
        segment,
        host_ops: r.host_ops,
        sim_ns: r.sim_time.0,
        windows: ssd.timeseries().map_or(0, |t| t.total()),
        erases: r.erases,
        retired: r.ftl.retired_blocks,
        mode: format!("{:?}", ssd.ftl().degraded()),
    }
}

/// Runs the whole campaign for one scenario *through checkpoints*: each
/// segment runs on an emulator rebuilt from the previous segment's
/// serialized bytes, exactly as the per-process CLI mode does across
/// real restarts. Returns the final checkpoint, the final scrape, and
/// one digest per segment.
pub fn run_chained(
    scale: &Scale,
    scenario: &AgingScenario,
    segments: usize,
) -> (Vec<u8>, String, Vec<SegmentDigest>) {
    let trace = {
        let probe = fresh_device(scale, scenario);
        build_trace(scale, probe.logical_pages())
    };
    let mut bytes: Option<Vec<u8>> = None;
    let mut digests = Vec::with_capacity(segments);
    let mut scrape = String::new();
    for k in 0..segments {
        let mut ssd = match &bytes {
            None => fresh_device(scale, scenario),
            Some(b) => Emulator::restore_checkpoint(b)
                .expect("a checkpoint this process just wrote must restore"),
        };
        run_segment(&mut ssd, &trace, scenario, segments, k);
        digests.push(digest(&ssd, k));
        scrape = ssd.prometheus_scrape();
        bytes = Some(ssd.save_checkpoint());
    }
    (bytes.expect("segments >= 1"), scrape, digests)
}

/// The control arm: the same segments in one process, no serialization.
pub fn run_uninterrupted(
    scale: &Scale,
    scenario: &AgingScenario,
    segments: usize,
) -> (Vec<u8>, String, Vec<SegmentDigest>) {
    let mut ssd = fresh_device(scale, scenario);
    let trace = build_trace(scale, ssd.logical_pages());
    let mut digests = Vec::with_capacity(segments);
    for k in 0..segments {
        run_segment(&mut ssd, &trace, scenario, segments, k);
        digests.push(digest(&ssd, k));
    }
    (ssd.save_checkpoint(), ssd.prometheus_scrape(), digests)
}

/// One scenario's differential outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Final checkpoint bytes identical between the chained and
    /// uninterrupted arms.
    pub bytes_identical: bool,
    /// Final Prometheus scrapes identical.
    pub scrape_identical: bool,
    /// Per-segment digests identical at every boundary.
    pub digests_identical: bool,
    /// Chained arm's per-segment digests.
    pub segments: Vec<SegmentDigest>,
    /// Final checkpoint size in bytes.
    pub checkpoint_bytes: usize,
}

impl ScenarioReport {
    /// Whether this scenario's resume equivalence held.
    pub fn identical(&self) -> bool {
        self.bytes_identical && self.scrape_identical && self.digests_identical
    }
}

/// Everything `BENCH_campaign.json` serializes.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignBundle {
    /// Scale preset name.
    pub scale_name: String,
    /// Segments per campaign.
    pub segments: usize,
    /// One report per sweep scenario.
    pub reports: Vec<ScenarioReport>,
}

impl CampaignBundle {
    /// The gate: every scenario byte-identical, and every segment of
    /// every scenario closed at least one telemetry window.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for r in &self.reports {
            if !r.bytes_identical {
                v.push(format!("scenario '{}': final checkpoints differ", r.name));
            }
            if !r.scrape_identical {
                v.push(format!("scenario '{}': final Prometheus scrapes differ", r.name));
            }
            if !r.digests_identical {
                v.push(format!("scenario '{}': a segment boundary diverged", r.name));
            }
            if let Some(d) = r.segments.last() {
                if d.windows < self.segments as u64 {
                    v.push(format!(
                        "scenario '{}': {} windows over {} segments",
                        r.name, d.windows, self.segments
                    ));
                }
            }
        }
        v
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "== Checkpointed aging campaign (scale {}, {} segments) ==",
            self.scale_name, self.segments
        )
        .unwrap();
        for r in &self.reports {
            writeln!(
                out,
                "\nscenario {:<8} checkpoint {} B -> {}",
                r.name,
                r.checkpoint_bytes,
                if r.identical() { "IDENTICAL" } else { "DIVERGED" },
            )
            .unwrap();
            writeln!(
                out,
                "{:>4} {:>10} {:>14} {:>8} {:>8} {:>8}  mode",
                "seg", "host_ops", "sim_ns", "windows", "erases", "retired"
            )
            .unwrap();
            for d in &r.segments {
                writeln!(
                    out,
                    "{:>4} {:>10} {:>14} {:>8} {:>8} {:>8}  {}",
                    d.segment, d.host_ops, d.sim_ns, d.windows, d.erases, d.retired, d.mode
                )
                .unwrap();
            }
        }
        let v = self.violations();
        if v.is_empty() {
            writeln!(out, "\nresume equivalence: PASS (all scenarios byte-identical)").unwrap();
        } else {
            for msg in &v {
                writeln!(out, "\nresume equivalence FAILED: {msg}").unwrap();
            }
        }
        out
    }

    /// Machine-readable JSON (`BENCH_campaign.json`), hand-rendered —
    /// the build has no serde.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        writeln!(out, "  \"bench\": \"campaign\",").unwrap();
        writeln!(out, "  \"scale\": \"{}\",", self.scale_name).unwrap();
        writeln!(out, "  \"segments\": {},", self.segments).unwrap();
        writeln!(out, "  \"scenarios\": [").unwrap();
        for (i, r) in self.reports.iter().enumerate() {
            writeln!(out, "    {{\"name\": \"{}\",", r.name).unwrap();
            writeln!(
                out,
                "     \"identical\": {}, \"bytes_identical\": {}, \"scrape_identical\": {}, \
                 \"checkpoint_bytes\": {},",
                r.identical(),
                r.bytes_identical,
                r.scrape_identical,
                r.checkpoint_bytes,
            )
            .unwrap();
            writeln!(out, "     \"segments\": [").unwrap();
            for (j, d) in r.segments.iter().enumerate() {
                write!(
                    out,
                    "       {{\"segment\": {}, \"host_ops\": {}, \"sim_ns\": {}, \
                     \"windows\": {}, \"erases\": {}, \"retired\": {}, \"mode\": \"{}\"}}",
                    d.segment, d.host_ops, d.sim_ns, d.windows, d.erases, d.retired, d.mode
                )
                .unwrap();
                out.push_str(if j + 1 < r.segments.len() { ",\n" } else { "\n" });
            }
            write!(out, "     ]}}").unwrap();
            out.push_str(if i + 1 < self.reports.len() { ",\n" } else { "\n" });
        }
        writeln!(out, "  ],").unwrap();
        writeln!(out, "  \"pass\": {}", self.violations().is_empty()).unwrap();
        out.push_str("}\n");
        out
    }
}

/// Runs the full differential sweep: every scenario, chained vs
/// uninterrupted.
pub fn run(scale: &Scale, scale_name: &str) -> CampaignBundle {
    run_with_segments(scale, scale_name, 3)
}

/// [`run`] with an explicit segment count.
pub fn run_with_segments(scale: &Scale, scale_name: &str, segments: usize) -> CampaignBundle {
    let reports = scenarios()
        .iter()
        .map(|sc| {
            let (chained, chained_scrape, chained_digests) = run_chained(scale, sc, segments);
            let (base, base_scrape, base_digests) = run_uninterrupted(scale, sc, segments);
            ScenarioReport {
                name: sc.name.to_string(),
                bytes_identical: chained == base,
                scrape_identical: chained_scrape == base_scrape,
                digests_identical: chained_digests == base_digests,
                checkpoint_bytes: chained.len(),
                segments: chained_digests,
            }
        })
        .collect();
    CampaignBundle { scale_name: scale_name.to_string(), segments, reports }
}

/// The `campaign` experiment as printable text (no file output, no
/// gate; the `experiments` binary's subcommand adds both).
pub fn campaign(scale: &Scale, scale_name: &str) -> String {
    run(scale, scale_name).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_is_resume_equivalent() {
        let b = run_with_segments(&Scale::smoke(), "smoke", 2);
        assert!(b.violations().is_empty(), "{:?}", b.violations());
        for r in &b.reports {
            assert!(r.identical(), "scenario {} diverged", r.name);
            assert_eq!(r.segments.len(), 2);
            // Aging + fault scenarios genuinely ran work.
            let last = r.segments.last().unwrap();
            assert!(last.host_ops > 0 && last.erases > 0, "{last:?}");
        }
        // The worn scenario's fault axis actually injected failures, so
        // the equivalence covered live fault-draw streams.
        let worn = b.reports.iter().find(|r| r.name == "worn").unwrap();
        assert!(worn.segments.last().unwrap().sim_ns > 0);
    }

    #[test]
    fn json_is_well_formed_and_carries_the_gate() {
        let b = run_with_segments(&Scale::smoke(), "smoke", 2);
        let j = b.to_json();
        let parsed = evanesco_ssd::jsonlite::Json::parse(&j).expect("well-formed JSON");
        assert_eq!(
            parsed.get("bench").and_then(evanesco_ssd::jsonlite::Json::as_str),
            Some("campaign")
        );
        assert!(j.contains("\"pass\": true"));
    }

    #[test]
    fn divergence_is_reported_not_swallowed() {
        let mut b = run_with_segments(&Scale::smoke(), "smoke", 2);
        b.reports[0].bytes_identical = false;
        assert!(b.violations().iter().any(|v| v.contains("checkpoints differ")));
        assert!(b.to_json().contains("\"pass\": false"));
    }

    #[test]
    fn segment_bounds_partition_the_trace() {
        for total in [0usize, 1, 7, 100] {
            for segments in [1usize, 2, 3, 5] {
                let mut covered = 0;
                for k in 0..segments {
                    let (lo, hi) = bounds(total, segments, k);
                    assert!(lo <= hi && hi <= total);
                    covered += hi - lo;
                }
                assert_eq!(covered, total, "{total} ops over {segments} segments");
            }
        }
    }
}

//! Out-of-order multi-queue scheduler throughput (`BENCH_scheduler.json`).
//!
//! Runs one deterministic mixed read/write/trim request trace through
//! [`evanesco_ssd::Emulator::run_scheduled`] at several queue depths on
//! the paper's 2-channel × 4-chip topology, with die-interleaved write
//! allocation and lock coalescing enabled. Queue depth 1 is the fully
//! serialized baseline (request *n + 1* starts only after request *n*
//! completes); deeper queues let independent requests overlap on idle
//! chips. Host-visible results are byte-identical at every depth — the
//! benchmark measures pure scheduling gain.
//!
//! The `scheduler` subcommand of the `experiments` binary renders the
//! table below, writes the machine-readable `BENCH_scheduler.json`, and
//! **fails (exit 1)** when the queue-depth-8 speedup over the serialized
//! baseline drops below [`GATE_MIN_SPEEDUP`] — a CI regression gate for
//! the scheduling and allocation fast paths.

use crate::scale::Scale;
use evanesco_ftl::config::WriteAlloc;
use evanesco_ftl::{FtlConfig, SanitizePolicy};
use evanesco_nand::cell::CellTech;
use evanesco_nand::geometry::Geometry;
use evanesco_nand::timing::{Nanos, TimingSpec};
use evanesco_ssd::{Emulator, HostOp, SsdConfig};
use std::fmt::Write as _;

/// Queue depths measured, smallest first. Index 0 must be 1 (the
/// serialized baseline every other point is normalized against).
pub const QUEUE_DEPTHS: [usize; 5] = [1, 2, 4, 8, 16];

/// The queue depth the CI gate checks.
pub const GATE_QD: usize = 8;

/// Minimum acceptable speedup at [`GATE_QD`] over the serialized
/// baseline before the `scheduler` subcommand fails the run.
pub const GATE_MIN_SPEEDUP: f64 = 1.5;

/// Measurements for one queue depth.
#[derive(Debug, Clone, PartialEq)]
pub struct QdPoint {
    /// Queue depth.
    pub qd: usize,
    /// Simulated duration of the measured trace.
    pub sim_time: Nanos,
    /// Host page operations per simulated second.
    pub iops: f64,
    /// Simulated-time speedup over the queue-depth-1 baseline.
    pub speedup: f64,
    /// Largest number of requests ever outstanding.
    pub max_outstanding: usize,
    /// Per-channel busy fraction (busy time / simulated duration).
    pub channel_util: Vec<f64>,
    /// Mean per-chip busy fraction.
    pub mean_chip_util: f64,
    /// Individual `pLock` commands issued.
    pub plocks: u64,
    /// `bLock` commands issued.
    pub blocks_locked: u64,
    /// Deferred `pLock`s retired without a per-page command (coalesced
    /// into a `bLock` or superseded by a physical erase).
    pub coalesced_plocks: u64,
    /// Deferred `pLock`s that aged out and were issued individually.
    pub coalesce_flushed_plocks: u64,
    /// Reliability-ladder responses (lock retries, escalations, fallbacks,
    /// program remaps, erase retries, retirements) during this run. Zero
    /// unless the config arms a fault model.
    pub reliability_events: u64,
    /// Chip-level injected faults (command failures plus uncorrectable
    /// reads) during this run.
    pub injected_faults: u64,
}

/// The full benchmark result: one [`QdPoint`] per entry of
/// [`QUEUE_DEPTHS`], plus the trace composition.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerReport {
    /// Scale preset name (for the JSON provenance field).
    pub scale_name: String,
    /// Requests in the trace.
    pub requests: u64,
    /// Logical pages the trace touches.
    pub host_pages: u64,
    /// Write / read / trim request counts.
    pub op_mix: (u64, u64, u64),
    /// One measurement per queue depth.
    pub points: Vec<QdPoint>,
}

/// The benchmark's SSD: the paper's 2-channel × 4-chip topology with
/// die-interleaved allocation and lock coalescing on. At smoke scale the
/// miniature block shape keeps the run in milliseconds.
pub fn sched_config(scale: &Scale) -> SsdConfig {
    let mut cfg = if scale.tiny_blocks {
        let geometry = Geometry {
            tech: CellTech::Tlc,
            blocks: scale.blocks_per_chip,
            wordlines_per_block: 8,
            page_bytes: 16 * 1024,
            spare_bytes: 1024,
        };
        let ftl = FtlConfig {
            geometry,
            n_chips: 8,
            chips_per_channel: 4,
            write_alloc: WriteAlloc::ChannelInterleaved,
            lock_coalescing: true,
            // Wide enough that a block whose pages die across one hot-region
            // rewrite sweep (a few hundred host writes) is promoted to one
            // bLock instead of aging out page by page.
            coalesce_window: 1024,
            op_ratio: 0.125,
            gc_free_threshold: 2,
            block_min_plocks: 4,
            eager_gc_erase: false,
            gc_victim: Default::default(),
            timing: TimingSpec::paper(),
            faults: evanesco_ftl::config::FaultConfig::none(),
            reliability: evanesco_ftl::config::ReliabilityConfig::paper(),
        };
        SsdConfig { channels: 2, chips_per_channel: 4, ftl, track_tags: false, stale_audit: false }
    } else {
        SsdConfig::scaled(scale.blocks_per_chip)
    };
    cfg.ftl.write_alloc = WriteAlloc::ChannelInterleaved;
    cfg.ftl.lock_coalescing = true;
    cfg.ftl.coalesce_window = 1024;
    cfg.track_tags = false;
    cfg
}

/// The deterministic mixed trace. Two interleaved components:
///
/// * **background** — random 1–4-page requests (~60% writes, half
///   secured, ~30% reads, ~10% trims) over a cold range;
/// * **hot sweeps** — periodic sequential secure rewrites of a small hot
///   region. A sweep is contiguous in the trace, so the blocks it fills
///   hold hot pages only; the *next* sweep then invalidates whole blocks
///   back-to-back — exactly the pattern lock coalescing promotes to
///   single `bLock`s (paper §4.3).
pub fn mixed_trace(logical_pages: u64, requests: usize, seed: u64) -> Vec<HostOp> {
    let hot = 768.min((logical_pages / 4).max(8) & !3);
    let cold_span = (logical_pages.saturating_sub(hot + 4) / 2).max(8);
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut step = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x >> 33
    };
    let mut ops = Vec::with_capacity(requests);
    while ops.len() < requests {
        for _ in 0..256 {
            let lpa = hot + step() % cold_span;
            let npages = 1 + step() % 4;
            ops.push(match step() % 10 {
                0..=5 => HostOp::Write { lpa, npages, secure: step() % 2 == 0 },
                6..=8 => HostOp::Read { lpa, npages },
                _ => HostOp::Trim { lpa, npages },
            });
        }
        let mut l = 0;
        while l < hot {
            ops.push(HostOp::Write { lpa: l, npages: 4.min(hot - l), secure: true });
            l += 4;
        }
    }
    ops.truncate(requests);
    ops
}

fn run_at(cfg: SsdConfig, ops: &[HostOp], qd: usize) -> (Emulator, evanesco_ssd::SchedRun) {
    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    let run = ssd.run_scheduled(ops, qd);
    // Settle deferred locks so the lock mix below reflects the whole
    // trace, not whatever happened to age out of the window.
    ssd.flush_coalesced_locks();
    (ssd, run)
}

/// Runs the benchmark at every queue depth.
pub fn run(scale: &Scale, scale_name: &str) -> SchedulerReport {
    let cfg = sched_config(scale);
    let logical = cfg.ftl.logical_pages();
    // Enough requests that every chip sees real work, capped so `full`
    // scale stays interactive.
    let requests = ((logical / 2) as usize).clamp(512, 20_000);
    let ops = mixed_trace(logical, requests, scale.seed);
    let op_mix = ops.iter().fold((0u64, 0u64, 0u64), |mut m, op| {
        match op {
            HostOp::Write { .. } => m.0 += 1,
            HostOp::Read { .. } => m.1 += 1,
            HostOp::Trim { .. } => m.2 += 1,
        }
        m
    });

    let mut points = Vec::new();
    let mut base_time = Nanos::ZERO;
    let mut host_pages = 0;
    for &qd in &QUEUE_DEPTHS {
        let (ssd, run) = run_at(cfg, &ops, qd);
        if qd == 1 {
            base_time = run.sim_time;
            host_pages = run.host_pages;
        }
        let secs = run.sim_time.as_secs_f64().max(f64::MIN_POSITIVE);
        let stats = ssd.ftl().stats();
        points.push(QdPoint {
            qd,
            sim_time: run.sim_time,
            iops: run.iops(),
            speedup: base_time.0 as f64 / run.sim_time.0.max(1) as f64,
            max_outstanding: run.max_outstanding,
            channel_util: ssd
                .device()
                .channel_utilized()
                .iter()
                .map(|u| u.0 as f64 / secs / 1e9)
                .collect(),
            mean_chip_util: {
                let chips = ssd.device().chip_utilized();
                chips.iter().map(|u| u.0 as f64 / secs / 1e9).sum::<f64>() / chips.len() as f64
            },
            plocks: stats.plocks,
            blocks_locked: stats.blocks_locked,
            coalesced_plocks: stats.coalesced_plocks,
            coalesce_flushed_plocks: stats.coalesce_flushed_plocks,
            reliability_events: stats.reliability_events(),
            injected_faults: {
                let f = ssd.result().faults;
                f.command_failures() + f.unc_reads
            },
        });
    }
    SchedulerReport {
        scale_name: scale_name.to_string(),
        requests: requests as u64,
        host_pages,
        op_mix,
        points,
    }
}

impl SchedulerReport {
    /// The measured speedup at the CI gate's queue depth.
    pub fn gate_speedup(&self) -> f64 {
        self.points.iter().find(|p| p.qd == GATE_QD).map_or(0.0, |p| p.speedup)
    }

    /// Whether the CI gate passes.
    pub fn gate_passes(&self) -> bool {
        self.gate_speedup() >= GATE_MIN_SPEEDUP
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(out, "== Scheduler: out-of-order multi-queue throughput ==").unwrap();
        writeln!(
            out,
            "{} requests ({} writes / {} reads / {} trims), {} pages, scale {}",
            self.requests,
            self.op_mix.0,
            self.op_mix.1,
            self.op_mix.2,
            self.host_pages,
            self.scale_name,
        )
        .unwrap();
        writeln!(
            out,
            "{:>4} {:>12} {:>9} {:>10} {:>16} {:>9} {:>8} {:>7} {:>10} {:>8}",
            "qd",
            "iops",
            "speedup",
            "sim_ms",
            "chan_util",
            "chip_util",
            "plocks",
            "blocks",
            "coalesced",
            "flushed"
        )
        .unwrap();
        for p in &self.points {
            let chan =
                p.channel_util.iter().map(|u| format!("{u:.2}")).collect::<Vec<_>>().join("/");
            writeln!(
                out,
                "{:>4} {:>12.0} {:>8.2}x {:>10.2} {:>16} {:>9.2} {:>8} {:>7} {:>10} {:>8}",
                p.qd,
                p.iops,
                p.speedup,
                p.sim_time.0 as f64 / 1e6,
                chan,
                p.mean_chip_util,
                p.plocks,
                p.blocks_locked,
                p.coalesced_plocks,
                p.coalesce_flushed_plocks,
            )
            .unwrap();
        }
        writeln!(
            out,
            "gate: qd {} speedup {:.2}x (minimum {:.1}x) -> {}",
            GATE_QD,
            self.gate_speedup(),
            GATE_MIN_SPEEDUP,
            if self.gate_passes() { "PASS" } else { "FAIL" },
        )
        .unwrap();
        out
    }

    /// Machine-readable JSON (`BENCH_scheduler.json`), hand-rendered —
    /// the build has no serde.
    pub fn to_json(&self) -> String {
        fn f(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.4}")
            } else {
                "0.0".to_string()
            }
        }
        let mut out = String::new();
        out.push_str("{\n");
        writeln!(out, "  \"bench\": \"scheduler\",").unwrap();
        writeln!(out, "  \"scale\": \"{}\",", self.scale_name).unwrap();
        writeln!(out, "  \"requests\": {},", self.requests).unwrap();
        writeln!(out, "  \"host_pages\": {},", self.host_pages).unwrap();
        writeln!(
            out,
            "  \"op_mix\": {{\"writes\": {}, \"reads\": {}, \"trims\": {}}},",
            self.op_mix.0, self.op_mix.1, self.op_mix.2
        )
        .unwrap();
        writeln!(
            out,
            "  \"gate\": {{\"qd\": {}, \"min_speedup\": {}, \"speedup\": {}, \"pass\": {}}},",
            GATE_QD,
            f(GATE_MIN_SPEEDUP),
            f(self.gate_speedup()),
            self.gate_passes(),
        )
        .unwrap();
        writeln!(out, "  \"points\": [").unwrap();
        for (i, p) in self.points.iter().enumerate() {
            let chan = p.channel_util.iter().map(|u| f(*u)).collect::<Vec<_>>().join(", ");
            write!(
                out,
                "    {{\"qd\": {}, \"iops\": {}, \"speedup_vs_qd1\": {}, \"sim_time_ns\": {}, \
                 \"max_outstanding\": {}, \"channel_utilization\": [{}], \
                 \"mean_chip_utilization\": {}, \"plocks\": {}, \"blocks_locked\": {}, \
                 \"coalesced_plocks\": {}, \"coalesce_flushed_plocks\": {}, \
                 \"reliability_events\": {}, \"injected_faults\": {}}}",
                p.qd,
                f(p.iops),
                f(p.speedup),
                p.sim_time.0,
                p.max_outstanding,
                chan,
                f(p.mean_chip_util),
                p.plocks,
                p.blocks_locked,
                p.coalesced_plocks,
                p.coalesce_flushed_plocks,
                p.reliability_events,
                p.injected_faults,
            )
            .unwrap();
            out.push_str(if i + 1 < self.points.len() { ",\n" } else { "\n" });
        }
        writeln!(out, "  ]").unwrap();
        out.push_str("}\n");
        out
    }
}

/// The `scheduler` experiment as printable text (no file output, no
/// gate; the `experiments` binary's subcommand adds both).
pub fn scheduler(scale: &Scale, scale_name: &str) -> String {
    run(scale, scale_name).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_passes_the_gate_with_headroom() {
        let r = run(&Scale::smoke(), "smoke");
        assert_eq!(r.points.len(), QUEUE_DEPTHS.len());
        assert_eq!(r.points[0].qd, 1);
        assert!((r.points[0].speedup - 1.0).abs() < 1e-12);
        // The acceptance bar: >= 2x at queue depth 8 on the 8-chip
        // topology (the CI gate at 1.5x then has real headroom).
        assert!(r.gate_speedup() >= 2.0, "qd8 speedup {}", r.gate_speedup());
        assert!(r.gate_passes());
        // Speedup is monotone in queue depth for this trace.
        for w in r.points.windows(2) {
            assert!(w[1].speedup >= w[0].speedup * 0.95, "qd {} regressed", w[1].qd);
        }
        // Deeper queues keep channels busier.
        let u1: f64 = r.points[0].channel_util.iter().sum();
        let u8: f64 = r.points[3].channel_util.iter().sum();
        assert!(u8 > u1, "channel utilization should rise with depth");
        // Lock coalescing did real work on this overwrite-heavy trace.
        let p8 = &r.points[3];
        assert!(p8.coalesced_plocks > 0, "no locks coalesced");
        // The bench runs fault-free: the reliability counters it surfaces
        // must read zero (nonzero would mean phantom ladder activity).
        for p in &r.points {
            assert_eq!(p.reliability_events, 0, "qd {}: phantom reliability events", p.qd);
            assert_eq!(p.injected_faults, 0, "qd {}: phantom injected faults", p.qd);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = run(&Scale::smoke(), "smoke");
        let j = r.to_json();
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        assert_eq!(j.matches("\"qd\":").count(), QUEUE_DEPTHS.len() + 1);
        assert!(j.contains("\"pass\": true"));
        assert_eq!(j.matches("\"reliability_events\":").count(), QUEUE_DEPTHS.len());
        assert_eq!(j.matches("\"injected_faults\":").count(), QUEUE_DEPTHS.len());
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces in generated JSON"
        );
    }
}

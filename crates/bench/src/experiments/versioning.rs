//! Data-versioning experiments (paper §3): Table 1 and Figure 4.
//!
//! These run the *baseline* (sanitization-free) FTL — the point of §3 is to
//! measure how much stale data a conventional SSD accumulates.

use crate::scale::Scale;
use evanesco_ftl::SanitizePolicy;
use evanesco_ssd::Emulator;
use evanesco_workloads::generate::generate;
use evanesco_workloads::replay::replay_with;
use evanesco_workloads::vertrace::{VerTrace, VerTraceReport};
use evanesco_workloads::WorkloadSpec;
use std::fmt::Write;

/// Runs one workload on the baseline SSD with VerTrace attached.
fn run_vertrace(scale: &Scale, spec: &WorkloadSpec, timelines: bool) -> (VerTrace, u64) {
    let mut cfg = scale.ssd_config();
    cfg.track_tags = false;
    let mut ssd = Emulator::new(cfg, SanitizePolicy::none());
    let logical = ssd.logical_pages();
    let trace = generate(spec, logical, scale.main_write_pages(logical), scale.seed);
    let mut vt = if timelines { VerTrace::with_timelines() } else { VerTrace::new() };
    replay_with(&mut ssd, &trace, &mut vt);
    (vt, logical)
}

/// Table 1: VAF and T_insecure for UV and MV files on Mobile, MailServer
/// and DBServer.
pub fn table1(scale: &Scale) -> String {
    let mut out = String::new();
    writeln!(out, "== Table 1: data versioning evaluations (baseline SSD) ==").unwrap();
    writeln!(
        out,
        "{:<12} | {:>8} {:>8} {:>9} {:>9} | {:>8} {:>8} {:>9} {:>9}",
        "", "UV", "UV", "UV", "UV", "MV", "MV", "MV", "MV"
    )
    .unwrap();
    writeln!(
        out,
        "{:<12} | {:>8} {:>8} {:>9} {:>9} | {:>8} {:>8} {:>9} {:>9}",
        "Workload",
        "VAF avg",
        "VAF max",
        "Tins avg",
        "Tins max",
        "VAF avg",
        "VAF max",
        "Tins avg",
        "Tins max"
    )
    .unwrap();
    for spec in [WorkloadSpec::mobile(), WorkloadSpec::mail_server(), WorkloadSpec::db_server()] {
        let (mut vt, logical) = run_vertrace(scale, &spec, false);
        let r: VerTraceReport = vt.report(logical);
        writeln!(
            out,
            "{:<12} | {:>8.3} {:>8.2} {:>9.3} {:>9.2} | {:>8.3} {:>8.2} {:>9.3} {:>9.2}",
            spec.name,
            r.uv.vaf_avg,
            r.uv.vaf_max,
            r.uv.tinsec_avg,
            r.uv.tinsec_max,
            r.mv.vaf_avg,
            r.mv.vaf_max,
            r.mv.tinsec_avg,
            r.mv.tinsec_max
        )
        .unwrap();
    }
    writeln!(
        out,
        "\npaper shape: MV files in DBServer have the largest VAF; even UV files\n\
         accumulate invalid versions (GC copies) and stay insecure for a long time."
    )
    .unwrap();
    out
}

/// Figure 4: `N_valid`/`N_invalid` timeplots for the worst UV file in
/// Mobile and the worst MV file in DBServer.
pub fn fig4(scale: &Scale) -> String {
    let mut out = String::new();
    writeln!(out, "== Figure 4: data versioning under different write patterns ==").unwrap();
    let cases = [
        ("(a) worst UV file in Mobile", WorkloadSpec::mobile(), false),
        ("(b) worst MV file in DBServer", WorkloadSpec::db_server(), true),
    ];
    for (label, spec, mv) in cases {
        let (mut vt, _) = run_vertrace(scale, &spec, true);
        vt.finalize();
        writeln!(out, "\n[{label}]").unwrap();
        let Some((id, stats)) = vt.worst_file(mv) else {
            writeln!(out, "  (no {} files produced)", if mv { "MV" } else { "UV" }).unwrap();
            continue;
        };
        writeln!(
            out,
            "  file {id}: max_valid {}  max_invalid {}  VAF {:.2}",
            stats.max_valid,
            stats.max_invalid,
            stats.vaf()
        )
        .unwrap();
        writeln!(out, "  {:>12} {:>10} {:>10}", "tick", "N_valid", "N_invalid").unwrap();
        // Downsample the timeline to at most 20 rows.
        let tl = &stats.timeline;
        let step = (tl.len() / 20).max(1);
        for (i, (t, v, inv)) in tl.iter().enumerate() {
            if i % step == 0 || i == tl.len() - 1 {
                writeln!(out, "  {:>12} {:>10} {:>10}", t, v, inv).unwrap();
            }
        }
    }
    writeln!(
        out,
        "\npaper shape: the UV file shows invalid spikes from GC copies; the MV file's\n\
         invalid count grows with updates and drains only slowly after GC starts."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_rows_and_nonzero_mv_vaf() {
        let s = table1(&Scale::smoke());
        assert!(s.contains("Mobile"));
        assert!(s.contains("DBServer"));
        // DBServer MV VAF should be materially nonzero.
        let db = s.lines().find(|l| l.starts_with("DBServer")).unwrap();
        // "DBServer | uvavg uvmax uvtins uvtinsmax | mvavg mvmax ..."
        let cols: Vec<&str> = db.split_whitespace().collect();
        let mv_avg: f64 = cols[7].parse().unwrap();
        assert!(mv_avg > 0.0, "DBServer MV VAF avg: {db}");
    }

    #[test]
    fn fig4_prints_timeplots() {
        let s = fig4(&Scale::smoke());
        assert!(s.contains("N_valid"));
        assert!(s.contains("worst MV file in DBServer"));
    }
}

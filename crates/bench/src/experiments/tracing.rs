//! Op-level tracing report (`trace` experiment, `TRACE_scheduler.json`).
//!
//! Re-runs the scheduler benchmark's deterministic mixed trace at queue
//! depth [`QD`] with request tracing and the live sanitization gauges
//! enabled, then reports where device time went: per-span-kind totals
//! across every traced request, per-op service-latency percentiles (the
//! read histogram this PR's headline bugfix un-discarded), the live
//! VAF / T_insecure gauges, and a chrome://tracing export validated
//! against the checked-in schema.
//!
//! The `trace` subcommand of the `experiments` binary prints the report,
//! writes the chrome JSON next to `BENCH_scheduler.json`, and **fails
//! (exit 1)** on schema drift — the same contract `examples/trace_export`
//! enforces in CI.

use crate::experiments::scheduler::{mixed_trace, sched_config};
use crate::scale::Scale;
use evanesco_ftl::SanitizePolicy;
use evanesco_ssd::trace::validate_chrome_trace;
use evanesco_ssd::{Emulator, GaugeSnapshot, LatencyBreakdown, SpanKind, TraceRecorder};
use std::fmt::Write as _;

/// The chrome-trace schema the export is validated against (checked in at
/// `tests/data/trace_schema.json`; CI fails on drift).
pub const TRACE_SCHEMA: &str = include_str!("../../../../tests/data/trace_schema.json");

/// Ring capacity: large enough to keep every request of a smoke/quick run,
/// so the span accounting below covers the whole trace.
pub const TRACE_CAPACITY: usize = 65_536;

/// Queue depth the traced run uses (the scheduler CI gate's depth).
pub const QD: usize = 8;

/// Everything the `trace` experiment measured.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Scale preset name.
    pub scale_name: String,
    /// Requests in the trace.
    pub requests: u64,
    /// The recorder, still holding every retained request trace.
    pub recorder: TraceRecorder,
    /// Service-latency histograms for the traced run.
    pub latency: LatencyBreakdown,
    /// Live gauges at end of run.
    pub gauges: GaugeSnapshot,
    /// Device capacity in logical pages (the T_insecure normalizer).
    pub capacity_pages: u64,
    /// The chrome://tracing JSON export.
    pub chrome_json: String,
}

/// Runs the traced benchmark.
pub fn run(scale: &Scale, scale_name: &str) -> TraceReport {
    let cfg = sched_config(scale);
    let logical = cfg.ftl.logical_pages();
    let requests = ((logical / 2) as usize).clamp(512, 20_000);
    let ops = mixed_trace(logical, requests, scale.seed);

    let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
    ssd.enable_gauges();
    ssd.enable_tracing(TRACE_CAPACITY);
    ssd.run_scheduled(&ops, QD);
    ssd.flush_coalesced_locks();

    let gauges = ssd.gauges().expect("gauges enabled").snapshot();
    let latency = ssd.result().latency;
    let capacity_pages = ssd.logical_pages();
    let recorder = ssd.take_trace().expect("tracing enabled");
    let chrome_json = recorder.to_chrome_json();
    TraceReport {
        scale_name: scale_name.to_string(),
        requests: requests as u64,
        recorder,
        latency,
        gauges,
        capacity_pages,
        chrome_json,
    }
}

impl TraceReport {
    /// Validates the chrome export against the checked-in schema.
    pub fn validate(&self) -> Result<(), String> {
        validate_chrome_trace(&self.chrome_json, TRACE_SCHEMA)
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(out, "== Trace: where device time goes at qd {QD} ==").unwrap();
        writeln!(
            out,
            "{} requests, scale {}, {} traces retained ({} evicted)",
            self.requests,
            self.scale_name,
            self.recorder.recorded().min(self.recorder.capacity() as u64),
            self.recorder.dropped(),
        )
        .unwrap();

        writeln!(out, "\nspan totals across retained traces:").unwrap();
        let grand: u64 = SpanKind::ALL.iter().map(|k| self.recorder.span_total(*k).0).sum();
        for kind in SpanKind::ALL {
            let t = self.recorder.span_total(kind);
            if t.0 == 0 {
                continue;
            }
            writeln!(
                out,
                "  {:<10} {:>12.3} ms {:>6.1}%",
                kind.label(),
                t.0 as f64 / 1e6,
                100.0 * t.0 as f64 / grand.max(1) as f64,
            )
            .unwrap();
        }

        writeln!(out, "\nservice latency (us): count / p50 / p99 / max").unwrap();
        for (op, h) in [
            ("read", &self.latency.read),
            ("write", &self.latency.write),
            ("trim", &self.latency.trim),
        ] {
            writeln!(
                out,
                "  {:<6} {:>7} {:>9.1} {:>9.1} {:>9.1}",
                op,
                h.count(),
                h.percentile(50.0).0 as f64 / 1e3,
                h.percentile(99.0).0 as f64 / 1e3,
                h.max().0 as f64 / 1e3,
            )
            .unwrap();
        }

        let g = &self.gauges;
        writeln!(out, "\nlive sanitization gauges (evanesco policy):").unwrap();
        writeln!(
            out,
            "  valid {} / invalid {} secured pages; peaks {} / {}",
            g.valid_secured, g.invalid_secured, g.max_valid, g.max_invalid
        )
        .unwrap();
        writeln!(
            out,
            "  sanitized immediately {}, exposed-then-erased {}",
            g.sanitized_immediately, g.exposed_then_erased
        )
        .unwrap();
        writeln!(
            out,
            "  VAF {:.3}, T_insecure {:.6} (over {} capacity pages)",
            g.vaf,
            g.t_insecure(self.capacity_pages),
            self.capacity_pages
        )
        .unwrap();

        writeln!(
            out,
            "\nchrome export: {} bytes, schema {}",
            self.chrome_json.len(),
            match self.validate() {
                Ok(()) => "OK".to_string(),
                Err(e) => format!("DRIFT: {e}"),
            }
        )
        .unwrap();
        out
    }
}

/// The `trace` experiment as printable text (no file output; the
/// `experiments` binary's subcommand writes the chrome JSON and gates on
/// schema drift).
pub fn trace(scale: &Scale, scale_name: &str) -> String {
    run(scale, scale_name).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_smoke_run_is_consistent_and_valid() {
        let r = run(&Scale::smoke(), "smoke");
        // Requests that do no device work (reads of never-written pages,
        // trims of already-clean ranges) are deliberately not traced; on
        // this mixed trace they are a small minority.
        assert!(
            r.recorder.recorded() >= r.requests * 3 / 4,
            "most requests traced: {} of {}",
            r.recorder.recorded(),
            r.requests
        );
        assert_eq!(r.recorder.dropped(), 0, "ring sized for the whole run");
        // Headline bugfix: reads carry real latency samples at depth 8.
        assert!(r.latency.read.count() > 0, "read latency recorded");
        assert!(r.latency.read.max().0 > 0, "read latency is nonzero");
        // The span invariant holds for every retained trace.
        for t in r.recorder.traces() {
            let sum: u64 = t.segments.iter().map(|s| s.dur().0).sum();
            assert_eq!(sum, t.e2e().0, "segments must tile request {}", t.id);
        }
        // Under the evanesco policy secured deletes sanitize immediately.
        assert!(r.gauges.sanitized_immediately > 0);
        r.validate().expect("chrome export matches the checked-in schema");
        let rendered = r.render();
        assert!(rendered.contains("schema OK"), "{rendered}");
    }
}

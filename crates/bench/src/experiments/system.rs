//! System-level evaluation (paper §7): Figure 14(a) IOPS, Figure 14(b)
//! WAF, Figure 14(c) IOPS vs secure-data fraction, and the headline
//! numbers quoted in the abstract/§7 text.

use crate::scale::Scale;
use evanesco_ftl::SanitizePolicy;
use evanesco_ssd::{Emulator, RunResult};
use evanesco_workloads::generate::generate;
use evanesco_workloads::replay::replay;
use evanesco_workloads::{Trace, WorkloadSpec};
use std::fmt::Write;

/// The evaluated SSD variants, in the paper's Figure 14 order.
pub fn policies() -> [SanitizePolicy; 4] {
    [
        SanitizePolicy::erase_based(),
        SanitizePolicy::scrub(),
        SanitizePolicy::evanesco_no_block(),
        SanitizePolicy::evanesco(),
    ]
}

/// All measured runs of one workload: the baseline plus each policy.
#[derive(Debug, Clone)]
pub struct WorkloadRuns {
    /// Workload name.
    pub name: &'static str,
    /// The sanitization-free baseline run.
    pub baseline: RunResult,
    /// `(policy, result)` for the four secure variants.
    pub runs: Vec<(SanitizePolicy, RunResult)>,
}

fn run_one(scale: &Scale, trace: &Trace, policy: SanitizePolicy) -> RunResult {
    let mut cfg = scale.ssd_config();
    cfg.track_tags = false;
    let mut ssd = Emulator::new(cfg, policy);
    replay(&mut ssd, trace)
}

/// Runs the full Figure-14 matrix (4 workloads × baseline + 4 policies).
pub fn run_matrix(scale: &Scale) -> Vec<WorkloadRuns> {
    let cfg = scale.ssd_config();
    let logical = cfg.ftl.logical_pages();
    WorkloadSpec::table2()
        .iter()
        .map(|spec| {
            let trace = generate(spec, logical, scale.main_write_pages(logical), scale.seed);
            let baseline = run_one(scale, &trace, SanitizePolicy::none());
            let runs = policies().iter().map(|&p| (p, run_one(scale, &trace, p))).collect();
            WorkloadRuns { name: spec.name, baseline, runs }
        })
        .collect()
}

fn matrix_table(
    matrix: &[WorkloadRuns],
    metric_name: &str,
    metric: impl Fn(&RunResult, &RunResult) -> f64,
) -> String {
    let mut out = String::new();
    write!(out, "{:<16}", "Workload").unwrap();
    for (p, _) in &matrix[0].runs {
        write!(out, "{:>16}", p.to_string()).unwrap();
    }
    writeln!(out).unwrap();
    for w in matrix {
        write!(out, "{:<16}", w.name).unwrap();
        for (_, r) in &w.runs {
            write!(out, "{:>16.4}", metric(r, &w.baseline)).unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(out, "({metric_name} normalized to the no-sanitization baseline = 1.0)").unwrap();
    out
}

/// Figure 14(a): normalized IOPS of the four SSD variants.
pub fn fig14a(scale: &Scale) -> String {
    let matrix = run_matrix(scale);
    let mut out = String::new();
    writeln!(out, "== Figure 14(a): IOPS of different SSDs (higher is better) ==").unwrap();
    out += &matrix_table(&matrix, "IOPS", |r, b| r.iops_vs(b));
    writeln!(
        out,
        "paper shape: erSSD collapses (<4% of baseline); scrSSD ~ a third; secSSD ~95%;\n\
         secSSD beats secSSD_nobLock most under large-write workloads."
    )
    .unwrap();
    out
}

/// Figure 14(b): normalized WAF of the four SSD variants.
pub fn fig14b(scale: &Scale) -> String {
    let matrix = run_matrix(scale);
    let mut out = String::new();
    writeln!(out, "== Figure 14(b): WAF of different SSDs (lower is better) ==").unwrap();
    out += &matrix_table(&matrix, "WAF", |r, b| r.waf_vs(b));
    writeln!(
        out,
        "paper shape: erSSD amplifies writes by orders of magnitude; scrSSD by a few x;\n\
         secSSD is essentially at baseline."
    )
    .unwrap();
    out
}

/// Figure 14(c): secSSD IOPS (normalized to baseline) vs fraction of
/// securely-managed data.
pub fn fig14c(scale: &Scale) -> String {
    let cfg = scale.ssd_config();
    let logical = cfg.ftl.logical_pages();
    let fractions = [0.6, 0.7, 0.8, 0.9, 1.0];
    let mut out = String::new();
    writeln!(out, "== Figure 14(c): IOPS vs secure data fraction (secSSD) ==").unwrap();
    write!(out, "{:<16}", "Workload").unwrap();
    for f in fractions {
        write!(out, "{:>10}", format!("{:.0}%", f * 100.0)).unwrap();
    }
    writeln!(out).unwrap();
    for spec in WorkloadSpec::table2() {
        write!(out, "{:<16}", spec.name).unwrap();
        for f in fractions {
            let s = spec.with_secure_fraction(f);
            let trace = generate(&s, logical, scale.main_write_pages(logical), scale.seed);
            let base = run_one(scale, &trace, SanitizePolicy::none());
            let sec = run_one(scale, &trace, SanitizePolicy::evanesco());
            write!(out, "{:>10.4}", sec.iops_vs(&base)).unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(
        out,
        "paper shape: fewer secured pages -> closer to baseline; at 60% secured the\n\
         slowdown is small (<~6%), with DBServer the most affected."
    )
    .unwrap();
    out
}

/// The headline comparisons quoted in the paper's abstract and §7 text.
pub fn headline(scale: &Scale) -> String {
    let matrix = run_matrix(scale);
    let get = |w: &WorkloadRuns, want: SanitizePolicy| {
        w.runs.iter().find(|(p, _)| *p == want).map(|(_, r)| *r).expect("policy in matrix")
    };
    let mut out = String::new();
    writeln!(out, "== Headline comparisons (secSSD vs reprogram-based scrSSD) ==").unwrap();
    writeln!(
        out,
        "{:<14} {:>12} {:>14} {:>16} {:>14}",
        "Workload", "IOPS gain", "erase cut[%]", "pLock cut[%]", "vs baseline"
    )
    .unwrap();
    let mut gains = Vec::new();
    let mut erase_cuts = Vec::new();
    let mut plock_cuts = Vec::new();
    let mut vs_base = Vec::new();
    for w in &matrix {
        let sec = get(w, SanitizePolicy::evanesco());
        let scr = get(w, SanitizePolicy::scrub());
        let nob = get(w, SanitizePolicy::evanesco_no_block());
        let gain = if scr.iops > 0.0 { sec.iops / scr.iops } else { f64::INFINITY };
        let erase_cut = if scr.erases > 0 {
            100.0 * (1.0 - sec.erases as f64 / scr.erases as f64)
        } else {
            0.0
        };
        let plock_cut = if nob.plocks > 0 {
            100.0 * (1.0 - sec.plocks as f64 / nob.plocks as f64)
        } else {
            0.0
        };
        let vb = sec.iops_vs(&w.baseline);
        writeln!(
            out,
            "{:<14} {:>11.2}x {:>14.1} {:>16.1} {:>14.3}",
            w.name, gain, erase_cut, plock_cut, vb
        )
        .unwrap();
        gains.push(gain);
        erase_cuts.push(erase_cut);
        plock_cuts.push(plock_cut);
        vs_base.push(vb);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().copied().fold(f64::MIN, f64::max);
    writeln!(
        out,
        "\nIOPS gain vs scrSSD: up to {:.1}x, avg {:.1}x   [paper: up to 4.8x, avg 2.9x]",
        max(&gains),
        avg(&gains)
    )
    .unwrap();
    writeln!(
        out,
        "erase reduction vs scrSSD: up to {:.0}%, avg {:.0}%   [paper: up to 79%, avg 62%]",
        max(&erase_cuts),
        avg(&erase_cuts)
    )
    .unwrap();
    writeln!(
        out,
        "pLock reduction from bLock: up to {:.0}%, avg {:.0}%   [paper: up to 57%, avg 28%]",
        max(&plock_cuts),
        avg(&plock_cuts)
    )
    .unwrap();
    writeln!(out, "secSSD IOPS vs baseline: avg {:.1}%   [paper: 94.5%]", 100.0 * avg(&vs_base))
        .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_orderings_match_paper() {
        let scale = Scale::smoke();
        let matrix = run_matrix(&scale);
        assert_eq!(matrix.len(), 4);
        for w in &matrix {
            let get = |want: SanitizePolicy| {
                w.runs.iter().find(|(p, _)| *p == want).map(|(_, r)| *r).unwrap()
            };
            let er = get(SanitizePolicy::erase_based());
            let scr = get(SanitizePolicy::scrub());
            let sec = get(SanitizePolicy::evanesco());
            let nob = get(SanitizePolicy::evanesco_no_block());
            assert!(
                sec.iops >= scr.iops && scr.iops >= er.iops,
                "{}: IOPS ordering broken (sec {}, scr {}, er {})",
                w.name,
                sec.iops,
                scr.iops,
                er.iops
            );
            assert!(er.waf >= scr.waf && scr.waf >= sec.waf, "{}: WAF ordering broken", w.name);
            assert!(
                sec.iops >= nob.iops * 0.98,
                "{}: bLock should not hurt IOPS materially",
                w.name
            );
            assert!(
                sec.iops_vs(&w.baseline) > 0.6,
                "{}: secSSD too slow vs baseline: {}",
                w.name,
                sec.iops_vs(&w.baseline)
            );
        }
    }

    #[test]
    fn headline_prints_all_summaries() {
        let s = headline(&Scale::smoke());
        assert!(s.contains("IOPS gain vs scrSSD"));
        assert!(s.contains("erase reduction"));
        assert!(s.contains("pLock reduction"));
    }
}

//! The consolidated observability report (`BENCH_report.json`).
//!
//! One `experiments report` run exercises the whole PR-5 telemetry stack
//! and renders it as a regression-gated report:
//!
//! * **scheduler** — the out-of-order throughput gate numbers (same
//!   machinery as the `scheduler` subcommand);
//! * **attribution** — for Mobile, MailServer and DBServer on the
//!   baseline SSD, the live [`ExposureLedger`] Table-1 numbers side by
//!   side with the offline [`VerTrace`] numbers from the *same* run
//!   (attached through one observer [`Tee`]), plus retirement-path
//!   counters and the exposure-window histogram summary;
//! * **timeseries + decisions** — a telemetry-enabled DBServer run on the
//!   Evanesco SSD: windowed samples, peak invalid-secured gauge, and the
//!   FTL decision-log level counts;
//! * **timing neutrality** — the same run with every telemetry layer off
//!   must produce an identical [`evanesco_ssd::RunResult`].
//!
//! The `report` subcommand of the `experiments` binary writes
//! `BENCH_report.json`, checks the bundle's own invariants (neutrality,
//! live-vs-offline agreement within [`MAX_LIVE_OFFLINE_REL_DIFF`], the
//! paper's Table-1 orderings, the scheduler gate) and, when a checked-in
//! `BENCH_report.json` baseline exists at the same scale, gates numeric
//! drift against it with per-field tolerances. Any violation exits 1.

use crate::experiments::scheduler;
use crate::scale::Scale;
use evanesco_ftl::observer::Tee;
use evanesco_ftl::{DecisionLevel, SanitizePolicy};
use evanesco_nand::timing::Nanos;
use evanesco_ssd::jsonlite::Json;
use evanesco_ssd::Emulator;
use evanesco_workloads::generate::generate;
use evanesco_workloads::ledger::ExposureLedger;
use evanesco_workloads::replay::{replay, replay_with};
use evanesco_workloads::vertrace::{ClassStats, VerTrace};
use evanesco_workloads::WorkloadSpec;
use std::fmt::Write as _;

/// Largest tolerated relative disagreement between the live ledger and
/// the offline VerTrace on any Table-1 field (the acceptance bar; the
/// two share counting rules, so the observed value is 0).
pub const MAX_LIVE_OFFLINE_REL_DIFF: f64 = 0.05;

/// Live and offline Table-1 stats for one file class of one workload.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassPair {
    /// From the live [`ExposureLedger`].
    pub live: ClassStats,
    /// From the offline [`VerTrace`], same run.
    pub offline: ClassStats,
}

impl ClassPair {
    /// Largest relative live-vs-offline difference across the class's
    /// fields (1.0 when the file counts disagree).
    pub fn max_rel_diff(&self) -> f64 {
        if self.live.n_files != self.offline.n_files {
            return 1.0;
        }
        [
            (self.live.vaf_avg, self.offline.vaf_avg),
            (self.live.vaf_max, self.offline.vaf_max),
            (self.live.tinsec_avg, self.offline.tinsec_avg),
            (self.live.tinsec_max, self.offline.tinsec_max),
        ]
        .iter()
        .map(|&(a, b)| rel_diff(a, b))
        .fold(0.0, f64::max)
    }
}

/// Live attribution for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadAttribution {
    /// Workload name (Table-2 spelling).
    pub workload: String,
    /// Uni-version files.
    pub uv: ClassPair,
    /// Multi-version files.
    pub mv: ClassPair,
    /// Device-wide secured retirements by path `[host_update, trim,
    /// gc_copy]`.
    pub causes_secured: [u64; 3],
    /// The exposed (not sanitized at invalidation) subset.
    pub causes_exposed: [u64; 3],
    /// Mean exposure window in ticks (MV + UV files).
    pub exposure_mean_ticks: f64,
    /// Fraction of zero-tick windows (sanitized on the spot).
    pub exposure_zero_fraction: f64,
    /// Largest exposure window in ticks.
    pub exposure_max_ticks: u64,
}

impl WorkloadAttribution {
    /// Largest live-vs-offline relative difference across both classes.
    pub fn max_rel_diff(&self) -> f64 {
        self.uv.max_rel_diff().max(self.mv.max_rel_diff())
    }
}

/// The telemetry-enabled run's windowed-sample summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeseriesSection {
    /// Windows closed over the run (retained + dropped).
    pub windows: u64,
    /// Windows still in the ring.
    pub retained: u64,
    /// Mean windowed IOPS across retained samples.
    pub mean_window_iops: f64,
    /// Peak `invalid_secured` gauge across retained samples.
    pub peak_invalid_secured: u64,
    /// T_insecure at the final sample.
    pub final_t_insecure: f64,
}

/// The decision log's level counts from the telemetry-enabled run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionSection {
    /// Info-level records.
    pub info: u64,
    /// Warn-level records.
    pub warn: u64,
    /// Error-level records.
    pub error: u64,
    /// Records evicted from the ring.
    pub dropped: u64,
}

/// Everything `BENCH_report.json` serializes.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportBundle {
    /// Scale preset name (provenance; drift gating is same-scale only).
    pub scale_name: String,
    /// Scheduler-gate queue-depth speedup over serialized.
    pub scheduler_speedup: f64,
    /// IOPS at the gate queue depth.
    pub scheduler_iops: f64,
    /// Whether the scheduler gate passes.
    pub scheduler_pass: bool,
    /// One row per workload.
    pub attribution: Vec<WorkloadAttribution>,
    /// Table-1 ordering: every workload with both classes has MV VAF
    /// (avg) at or above UV.
    pub mv_vaf_exceeds_uv: bool,
    /// Table-1 ordering: DBServer has the largest MV VAF (avg).
    pub dbserver_mv_vaf_largest: bool,
    /// Windowed telemetry summary.
    pub timeseries: TimeseriesSection,
    /// Decision-log summary.
    pub decisions: DecisionSection,
    /// Telemetry-on and telemetry-off runs produced identical simulated
    /// results.
    pub timing_neutral: bool,
    /// Largest live-vs-offline relative difference across all workloads.
    pub live_offline_max_rel_diff: f64,
}

/// Relative difference with a small absolute floor, so near-zero pairs
/// don't explode.
fn rel_diff(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom < 1e-9 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

fn class_pair(live: &evanesco_workloads::ledger::ClassExposure, offline: &ClassStats) -> ClassPair {
    ClassPair { live: live.stats, offline: *offline }
}

/// One baseline-SSD workload run with the ledger and VerTrace attached
/// through a single [`Tee`] (shared run, so the comparison is apples to
/// apples).
fn run_attribution(scale: &Scale, spec: &WorkloadSpec) -> WorkloadAttribution {
    let mut cfg = scale.ssd_config();
    cfg.track_tags = false;
    let mut ssd = Emulator::new(cfg, SanitizePolicy::none());
    let logical = ssd.logical_pages();
    let trace = generate(spec, logical, scale.main_write_pages(logical), scale.seed);
    let mut lg = ExposureLedger::new();
    let mut vt = VerTrace::new();
    replay_with(&mut ssd, &trace, &mut Tee(&mut lg, &mut vt));
    let offline = vt.report(logical);
    let live = lg.report(logical);
    let mut exposure = live.uv.exposure;
    exposure.absorb(&live.mv.exposure);
    WorkloadAttribution {
        workload: spec.name.to_string(),
        uv: class_pair(&live.uv, &offline.uv),
        mv: class_pair(&live.mv, &offline.mv),
        causes_secured: live.device_causes.secured,
        causes_exposed: live.device_causes.exposed,
        exposure_mean_ticks: exposure.mean(),
        exposure_zero_fraction: exposure.zero_fraction(),
        exposure_max_ticks: exposure.max,
    }
}

/// Runs every section and assembles the bundle.
pub fn run(scale: &Scale, scale_name: &str) -> ReportBundle {
    let sched = scheduler::run(scale, scale_name);
    let sched_iops =
        sched.points.iter().find(|p| p.qd == scheduler::GATE_QD).map_or(0.0, |p| p.iops);

    let attribution: Vec<WorkloadAttribution> =
        [WorkloadSpec::mobile(), WorkloadSpec::mail_server(), WorkloadSpec::db_server()]
            .iter()
            .map(|spec| run_attribution(scale, spec))
            .collect();
    let live_offline_max_rel_diff =
        attribution.iter().map(|a| a.max_rel_diff()).fold(0.0, f64::max);
    let mv_vaf_exceeds_uv = attribution
        .iter()
        .filter(|a| a.uv.live.n_files > 0 && a.mv.live.n_files > 0)
        .all(|a| a.mv.live.vaf_avg >= a.uv.live.vaf_avg);
    let db = attribution.iter().find(|a| a.workload == "DBServer");
    let dbserver_mv_vaf_largest = db.is_some_and(|db| {
        attribution.iter().all(|a| db.mv.live.vaf_avg >= a.mv.live.vaf_avg)
            && db.mv.live.vaf_avg > 0.0
    });

    // Telemetry-enabled DBServer run on the Evanesco SSD, and the same
    // run with everything off for the neutrality check.
    let telemetry_run = |enable: bool| {
        let mut cfg = scale.ssd_config();
        cfg.track_tags = false;
        let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
        if enable {
            ssd.enable_gauges();
            ssd.enable_timeseries(Nanos::from_micros(250), 512);
            ssd.enable_decision_log(4096, DecisionLevel::Info);
        }
        let logical = ssd.logical_pages();
        let trace = generate(
            &WorkloadSpec::db_server(),
            logical,
            scale.main_write_pages(logical),
            scale.seed,
        );
        replay(&mut ssd, &trace);
        ssd.sample_timeseries_now();
        ssd
    };
    let on = telemetry_run(true);
    let off = telemetry_run(false);
    let timing_neutral = on.result() == off.result();

    let ts = on.timeseries().expect("timeseries enabled");
    let samples: Vec<_> = ts.samples().collect();
    let timeseries = TimeseriesSection {
        windows: ts.total(),
        retained: samples.len() as u64,
        mean_window_iops: if samples.is_empty() {
            0.0
        } else {
            samples.iter().map(|s| s.delta.iops).sum::<f64>() / samples.len() as f64
        },
        peak_invalid_secured: samples
            .iter()
            .filter_map(|s| s.gauges.map(|g| g.invalid_secured))
            .max()
            .unwrap_or(0),
        final_t_insecure: samples.last().map_or(0.0, |s| s.t_insecure),
    };
    let dl = on.decision_log();
    let decisions = DecisionSection {
        info: dl.counts[0],
        warn: dl.counts[1],
        error: dl.counts[2],
        dropped: dl.dropped,
    };

    ReportBundle {
        scale_name: scale_name.to_string(),
        scheduler_speedup: sched.gate_speedup(),
        scheduler_iops: sched_iops,
        scheduler_pass: sched.gate_passes(),
        attribution,
        mv_vaf_exceeds_uv,
        dbserver_mv_vaf_largest,
        timeseries,
        decisions,
        timing_neutral,
        live_offline_max_rel_diff,
    }
}

impl ReportBundle {
    /// The bundle's own invariants — violations independent of any
    /// baseline. Empty means healthy.
    pub fn self_check(&self) -> Vec<String> {
        let mut v = Vec::new();
        if !self.timing_neutral {
            v.push("telemetry is not timing-neutral: enabled run diverged".into());
        }
        if !self.scheduler_pass {
            v.push(format!(
                "scheduler gate failed: qd {} speedup {:.2}x < {:.1}x",
                scheduler::GATE_QD,
                self.scheduler_speedup,
                scheduler::GATE_MIN_SPEEDUP
            ));
        }
        if self.live_offline_max_rel_diff > MAX_LIVE_OFFLINE_REL_DIFF {
            v.push(format!(
                "live ledger disagrees with offline VerTrace: max rel diff {:.4} > {:.2}",
                self.live_offline_max_rel_diff, MAX_LIVE_OFFLINE_REL_DIFF
            ));
        }
        if !self.mv_vaf_exceeds_uv {
            v.push("Table-1 ordering broken: a workload has MV VAF below UV VAF".into());
        }
        if !self.dbserver_mv_vaf_largest {
            v.push("Table-1 ordering broken: DBServer MV VAF is not the largest".into());
        }
        if self.timeseries.windows == 0 {
            v.push("timeseries produced no windows".into());
        }
        if self.decisions.info + self.decisions.warn + self.decisions.error == 0 {
            v.push("decision log recorded nothing".into());
        }
        v
    }

    /// Numeric-drift violations against a previously written
    /// `BENCH_report.json`. An unparseable baseline is a violation; a
    /// baseline from a different scale is skipped (empty result) since
    /// its magnitudes aren't comparable.
    pub fn drift_against(&self, baseline: &str) -> Vec<String> {
        let base = match Json::parse(baseline) {
            Ok(b) => b,
            Err(e) => return vec![format!("unparseable BENCH_report.json baseline: {e}")],
        };
        if base.get("scale").and_then(Json::as_str) != Some(self.scale_name.as_str()) {
            return Vec::new();
        }
        let mut v = Vec::new();
        let mut num = |path: &str, cur: f64, tol: f64, floor: f64| {
            let mut node = &base;
            for key in path.split('.') {
                match node.get(key) {
                    Some(n) => node = n,
                    None => {
                        v.push(format!("baseline missing field '{path}'"));
                        return;
                    }
                }
            }
            let Some(b) = node.as_num() else {
                v.push(format!("baseline field '{path}' is not a number"));
                return;
            };
            if (cur - b).abs() > floor && rel_diff(cur, b) > tol {
                v.push(format!(
                    "'{path}' drifted: {cur:.4} vs baseline {b:.4} (tol {:.0}%)",
                    tol * 100.0
                ));
            }
        };
        num("scheduler.speedup", self.scheduler_speedup, 0.15, 0.05);
        num("scheduler.iops", self.scheduler_iops, 0.15, 1.0);
        num("timeseries.windows", self.timeseries.windows as f64, 0.25, 2.0);
        num(
            "timeseries.peak_invalid_secured",
            self.timeseries.peak_invalid_secured as f64,
            0.25,
            4.0,
        );
        num("live_offline_max_rel_diff", self.live_offline_max_rel_diff, 0.0, 0.05);
        if let Some(rows) = base.get("attribution").and_then(Json::as_arr) {
            for row in rows {
                let Some(name) = row.get("workload").and_then(Json::as_str) else { continue };
                let Some(cur) = self.attribution.iter().find(|a| a.workload == name) else {
                    v.push(format!("workload '{name}' missing from this run"));
                    continue;
                };
                for (field, val) in [
                    ("mv_vaf_avg", cur.mv.live.vaf_avg),
                    ("mv_tinsec_avg", cur.mv.live.tinsec_avg),
                    ("uv_vaf_avg", cur.uv.live.vaf_avg),
                ] {
                    let Some(b) = row.get("live").and_then(|l| l.get(field)).and_then(Json::as_num)
                    else {
                        v.push(format!("baseline missing field 'attribution.{name}.live.{field}'"));
                        continue;
                    };
                    if (val - b).abs() > 0.05 && rel_diff(val, b) > 0.05 {
                        v.push(format!(
                            "'{name}.{field}' drifted: {val:.4} vs baseline {b:.4} (tol 5%)"
                        ));
                    }
                }
            }
        }
        v
    }

    /// Human-readable markdown report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(out, "== Observability report (scale {}) ==", self.scale_name).unwrap();
        writeln!(
            out,
            "\nscheduler: qd {} speedup {:.2}x, {:.0} iops -> {}",
            scheduler::GATE_QD,
            self.scheduler_speedup,
            self.scheduler_iops,
            if self.scheduler_pass { "PASS" } else { "FAIL" },
        )
        .unwrap();
        writeln!(out, "\nattribution (live ledger | offline VerTrace, baseline SSD):").unwrap();
        writeln!(
            out,
            "{:<12} {:>5} | {:>9} {:>9} {:>9} {:>9} | {:>8}",
            "workload", "class", "vaf_avg", "(offl)", "tins_avg", "(offl)", "rel_diff"
        )
        .unwrap();
        for a in &self.attribution {
            for (class, pair) in [("UV", &a.uv), ("MV", &a.mv)] {
                writeln!(
                    out,
                    "{:<12} {:>5} | {:>9.3} {:>9.3} {:>9.3} {:>9.3} | {:>8.4}",
                    a.workload,
                    class,
                    pair.live.vaf_avg,
                    pair.offline.vaf_avg,
                    pair.live.tinsec_avg,
                    pair.offline.tinsec_avg,
                    pair.max_rel_diff(),
                )
                .unwrap();
            }
            writeln!(
                out,
                "{:<12} paths: secured {:?} exposed {:?}; exposure mean {:.1} ticks, \
                 zero {:.0}%, max {}",
                "",
                a.causes_secured,
                a.causes_exposed,
                a.exposure_mean_ticks,
                a.exposure_zero_fraction * 100.0,
                a.exposure_max_ticks,
            )
            .unwrap();
        }
        writeln!(
            out,
            "orderings: MV >= UV {}; DBServer MV largest {}",
            self.mv_vaf_exceeds_uv, self.dbserver_mv_vaf_largest
        )
        .unwrap();
        writeln!(
            out,
            "\ntimeseries (Evanesco SSD, DBServer): {} windows ({} retained), \
             mean {:.0} iops/window, peak invalid_secured {}, final T_insecure {:.4}",
            self.timeseries.windows,
            self.timeseries.retained,
            self.timeseries.mean_window_iops,
            self.timeseries.peak_invalid_secured,
            self.timeseries.final_t_insecure,
        )
        .unwrap();
        writeln!(
            out,
            "decision log: {} info / {} warn / {} error ({} dropped)",
            self.decisions.info, self.decisions.warn, self.decisions.error, self.decisions.dropped,
        )
        .unwrap();
        writeln!(
            out,
            "timing-neutral: {}; live-vs-offline max rel diff: {:.4}",
            self.timing_neutral, self.live_offline_max_rel_diff,
        )
        .unwrap();
        out
    }

    /// Machine-readable JSON (`BENCH_report.json`), hand-rendered — the
    /// build has no serde.
    pub fn to_json(&self) -> String {
        fn f(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.4}")
            } else {
                "0.0".to_string()
            }
        }
        fn class(c: &ClassStats) -> String {
            format!(
                "{{\"n_files\": {}, \"vaf_avg\": {}, \"vaf_max\": {}, \"tinsec_avg\": {}, \
                 \"tinsec_max\": {}}}",
                c.n_files,
                f(c.vaf_avg),
                f(c.vaf_max),
                f(c.tinsec_avg),
                f(c.tinsec_max)
            )
        }
        let mut out = String::new();
        out.push_str("{\n");
        writeln!(out, "  \"bench\": \"report\",").unwrap();
        writeln!(out, "  \"scale\": \"{}\",", self.scale_name).unwrap();
        writeln!(
            out,
            "  \"scheduler\": {{\"gate_qd\": {}, \"speedup\": {}, \"iops\": {}, \"pass\": {}}},",
            scheduler::GATE_QD,
            f(self.scheduler_speedup),
            f(self.scheduler_iops),
            self.scheduler_pass,
        )
        .unwrap();
        writeln!(out, "  \"attribution\": [").unwrap();
        for (i, a) in self.attribution.iter().enumerate() {
            writeln!(out, "    {{\"workload\": \"{}\",", a.workload).unwrap();
            writeln!(
                out,
                "     \"live\": {{\"uv\": {}, \"mv\": {}, \"uv_vaf_avg\": {}, \
                 \"mv_vaf_avg\": {}, \"mv_tinsec_avg\": {}}},",
                class(&a.uv.live),
                class(&a.mv.live),
                f(a.uv.live.vaf_avg),
                f(a.mv.live.vaf_avg),
                f(a.mv.live.tinsec_avg),
            )
            .unwrap();
            writeln!(
                out,
                "     \"offline\": {{\"uv\": {}, \"mv\": {}}},",
                class(&a.uv.offline),
                class(&a.mv.offline)
            )
            .unwrap();
            writeln!(
                out,
                "     \"causes\": {{\"secured\": [{}, {}, {}], \"exposed\": [{}, {}, {}]}},",
                a.causes_secured[0],
                a.causes_secured[1],
                a.causes_secured[2],
                a.causes_exposed[0],
                a.causes_exposed[1],
                a.causes_exposed[2],
            )
            .unwrap();
            writeln!(
                out,
                "     \"exposure\": {{\"mean_ticks\": {}, \"zero_fraction\": {}, \
                 \"max_ticks\": {}}},",
                f(a.exposure_mean_ticks),
                f(a.exposure_zero_fraction),
                a.exposure_max_ticks,
            )
            .unwrap();
            write!(out, "     \"max_rel_diff\": {}}}", f(a.max_rel_diff())).unwrap();
            out.push_str(if i + 1 < self.attribution.len() { ",\n" } else { "\n" });
        }
        writeln!(out, "  ],").unwrap();
        writeln!(
            out,
            "  \"orderings\": {{\"mv_vaf_exceeds_uv\": {}, \"dbserver_mv_vaf_largest\": {}}},",
            self.mv_vaf_exceeds_uv, self.dbserver_mv_vaf_largest,
        )
        .unwrap();
        writeln!(
            out,
            "  \"timeseries\": {{\"windows\": {}, \"retained\": {}, \"mean_window_iops\": {}, \
             \"peak_invalid_secured\": {}, \"final_t_insecure\": {}}},",
            self.timeseries.windows,
            self.timeseries.retained,
            f(self.timeseries.mean_window_iops),
            self.timeseries.peak_invalid_secured,
            f(self.timeseries.final_t_insecure),
        )
        .unwrap();
        writeln!(
            out,
            "  \"decisions\": {{\"info\": {}, \"warn\": {}, \"error\": {}, \"dropped\": {}}},",
            self.decisions.info, self.decisions.warn, self.decisions.error, self.decisions.dropped,
        )
        .unwrap();
        writeln!(out, "  \"timing_neutral\": {},", self.timing_neutral).unwrap();
        writeln!(out, "  \"live_offline_max_rel_diff\": {}", f(self.live_offline_max_rel_diff))
            .unwrap();
        out.push_str("}\n");
        out
    }
}

/// The `report` experiment as printable text (no file output, no gate;
/// the `experiments` binary's subcommand adds both).
pub fn report(scale: &Scale, scale_name: &str) -> String {
    run(scale, scale_name).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bundle_is_healthy() {
        let b = run(&Scale::smoke(), "smoke");
        assert!(b.timing_neutral, "telemetry changed simulated results");
        // Identical counting rules; only float summation order (HashMap
        // iteration) separates the two.
        assert!(
            b.live_offline_max_rel_diff < 1e-9,
            "ledger must match VerTrace: {}",
            b.live_offline_max_rel_diff
        );
        assert!(b.mv_vaf_exceeds_uv && b.dbserver_mv_vaf_largest, "Table-1 orderings broken");
        assert!(b.timeseries.windows > 0);
        assert!(b.decisions.info + b.decisions.warn + b.decisions.error > 0);
        assert!(b.self_check().is_empty(), "{:?}", b.self_check());
    }

    #[test]
    fn json_round_trips_and_gates_against_itself() {
        let b = run(&Scale::smoke(), "smoke");
        let j = b.to_json();
        let parsed = Json::parse(&j).expect("well-formed JSON");
        assert_eq!(parsed.get("bench").and_then(Json::as_str), Some("report"));
        assert_eq!(
            parsed.get("attribution").and_then(Json::as_arr).map(|a| a.len()),
            Some(b.attribution.len())
        );
        // Gating a bundle against its own serialization finds no drift.
        assert!(b.drift_against(&j).is_empty(), "{:?}", b.drift_against(&j));
        // A different scale's baseline is skipped, not a violation.
        let other = j.replace("\"scale\": \"smoke\"", "\"scale\": \"full\"");
        assert!(b.drift_against(&other).is_empty());
        // A corrupt baseline is a violation.
        assert!(!b.drift_against("{not json").is_empty());
    }

    #[test]
    fn drift_gate_catches_a_moved_number() {
        let b = run(&Scale::smoke(), "smoke");
        let mut doctored = b.clone();
        doctored.scheduler_speedup *= 2.0;
        let violations = doctored.drift_against(&b.to_json());
        assert!(violations.iter().any(|v| v.contains("scheduler.speedup")), "{violations:?}");
    }
}

//! Background artifacts: Figure 2 (Vth distributions), Table 2 (workload
//! characteristics) and the §5.5 overhead accounting.

use evanesco_core::majority::transistor_estimate;
use evanesco_nand::cell::{nominal_states, read_ref_voltages, state_bit, CellTech, VthState};
use evanesco_nand::timing::TimingSpec;
use evanesco_workloads::WorkloadSpec;
use std::fmt::Write;

/// Figure 2: Vth state tables for MLC and TLC with Gray encodings and read
/// reference voltages.
pub fn fig2() -> String {
    let mut out = String::new();
    writeln!(out, "== Figure 2: Vth distributions of 2^m-state NAND flash ==").unwrap();
    for tech in [CellTech::Mlc, CellTech::Tlc] {
        writeln!(out, "\n[{tech}] ({} states)", tech.n_states()).unwrap();
        writeln!(
            out,
            "{:<6} {:>8} {:>8}  bits({})",
            "state",
            "mean[V]",
            "sigma[V]",
            tech.page_types().iter().map(|t| t.to_string()).collect::<Vec<_>>().join("/")
        )
        .unwrap();
        for (s, (mean, sigma)) in nominal_states(tech).iter().enumerate() {
            let bits: String = tech
                .page_types()
                .iter()
                .rev()
                .map(|&ty| state_bit(tech, VthState(s as u8), ty).to_string())
                .collect();
            writeln!(
                out,
                "{:<6} {:>8.2} {:>8.3}  {}",
                VthState(s as u8).to_string(),
                mean,
                sigma,
                bits
            )
            .unwrap();
        }
        for &ty in tech.page_types() {
            let refs: Vec<String> =
                read_ref_voltages(tech, ty).iter().map(|v| format!("{v:.2}V")).collect();
            writeln!(out, "read refs {ty}: {}", refs.join(", ")).unwrap();
        }
    }
    out
}

/// Table 2: I/O characteristics of the four benchmarks — the generator
/// targets, plus the mix actually measured in a generated trace.
pub fn table2(scale: &crate::scale::Scale) -> String {
    use evanesco_workloads::generate::generate;
    let mut out = String::new();
    writeln!(out, "== Table 2: I/O characteristics of our four benchmarks ==").unwrap();
    writeln!(
        out,
        "{:<12} {:>10} {:<38} {:>14}",
        "Benchmark", "read:write", "file write pattern", "write size"
    )
    .unwrap();
    for spec in WorkloadSpec::table2() {
        // Express the read:write volume ratio as the smallest integer pair
        // (0.75 -> "3:4", 0.02 -> "1:50").
        let ratio = (1..=50u64)
            .find_map(|q| {
                let p = spec.reads_per_write * q as f64;
                if (p - p.round()).abs() < 1e-9 && p.round() >= 1.0 {
                    Some(format!("{}:{}", p.round() as u64, q))
                } else {
                    None
                }
            })
            .unwrap_or_else(|| format!("{:.2}:1", spec.reads_per_write));
        let pattern = match spec.name {
            "MailServer" => "create/append/delete e-mails",
            "DBServer" => "overwrite data files and log files",
            "FileServer" => "create/append/delete files",
            "Mobile" => "create/delete pictures",
            _ => "custom",
        };
        let size = format!("{}-{} KiB", spec.write_pages.0 * 16, spec.write_pages.1 * 16);
        writeln!(out, "{:<12} {:>10} {:<38} {:>14}", spec.name, ratio, pattern, size).unwrap();
    }

    // Validate the targets against actual generated traces.
    writeln!(out, "\nmeasured from generated traces (main phase):").unwrap();
    writeln!(
        out,
        "{:<12} {:>12} {:>14} {:>12} {:>12}",
        "Benchmark", "r:w ratio", "overwrite[%]", "write ops", "trim ops"
    )
    .unwrap();
    let logical = 8192u64;
    for spec in WorkloadSpec::table2() {
        let trace = generate(&spec, logical, 4 * logical, scale.seed);
        let s = trace.stats();
        writeln!(
            out,
            "{:<12} {:>12.3} {:>13.1}% {:>12} {:>12}",
            spec.name,
            s.read_write_ratio(),
            100.0 * s.overwrite_fraction(),
            s.write_ops,
            s.trim_ops
        )
        .unwrap();
    }
    out
}

/// §5.5 implementation overhead: latency fractions and area accounting.
pub fn overhead() -> String {
    let t = TimingSpec::paper();
    let mut out = String::new();
    writeln!(out, "== Section 5.5: implementation overhead ==").unwrap();
    writeln!(out, "latency:").unwrap();
    writeln!(
        out,
        "  tpLock = {} = {:.1}% of tPROG ({})  [paper bound: <14.3%]",
        t.t_plock,
        100.0 * t.t_plock.0 as f64 / t.t_prog.0 as f64,
        t.t_prog
    )
    .unwrap();
    writeln!(
        out,
        "  tbLock = {} = {:.1}% of tBERS ({})  [paper bound: <8.6%]",
        t.t_block,
        100.0 * t.t_block.0 as f64 / t.t_bers.0 as f64,
        t.t_bers
    )
    .unwrap();
    writeln!(out, "area:").unwrap();
    writeln!(
        out,
        "  flag cells: 9 cells/flag x 3 pages = 27 spare cells per WL (existing OOB cells)"
    )
    .unwrap();
    writeln!(out, "  majority circuit: ~{} transistors per chip (9-bit)", transistor_estimate(9))
        .unwrap();
    writeln!(out, "  bridge transistors: 8 per x8-I/O chip (one per data-out pin)").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_lists_both_technologies() {
        let s = fig2();
        assert!(s.contains("[MLC]"));
        assert!(s.contains("[TLC]"));
        assert!(s.contains("P7"));
        assert!(s.contains("read refs"));
    }

    #[test]
    fn table2_contains_all_workloads_and_ratios() {
        let s = table2(&crate::scale::Scale::smoke());
        for name in ["MailServer", "DBServer", "FileServer", "Mobile"] {
            assert!(s.contains(name));
        }
        assert!(s.contains("1:10"));
        assert!(s.contains("1:50"));
        assert!(s.contains("512-8192 KiB"));
    }

    #[test]
    fn overhead_bounds_stated() {
        let s = overhead();
        assert!(s.contains("14.3%"));
        assert!(s.contains("8.6%"));
        assert!(s.contains("200 transistors"));
    }
}

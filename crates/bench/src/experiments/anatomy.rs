//! Latency anatomy: exact stage decomposition with blame attribution
//! (`BENCH_anatomy.json`).
//!
//! Three claims about the `evanesco_ssd::anatomy` layer, each enforced
//! as an in-binary gate (exit 1 on breach):
//!
//! * **tiling identity** — for every traced request at queue depths
//!   {1, 8, 32}, the per-stage durations sum *exactly* (integer
//!   nanoseconds, no epsilon) to the request's end-to-end latency;
//! * **timing neutrality** — enabling the anatomy layer changes nothing
//!   the simulation computes: host results, completion times, and
//!   simulated end time are byte-identical with the layer on and off,
//!   on a single device and across a whole fleet (digest equality);
//! * **blame attribution** — under a trim-heavy sanitization storm
//!   (one `sanitize_storm` neighbor oversubscribing the device), the
//!   victim tenants' p99-tail interference is majority-attributed to
//!   sanitization-lock traffic, not to GC copyback or retry backoff.
//!
//! The rendered report also prints the top-5 slowest requests with
//! their causal chains — the digest a tail-latency postmortem starts
//! from.

use crate::scale::Scale;
use evanesco_fleet::{run_fleet, FleetConfig, QosMode};
use evanesco_nand::timing::Nanos;
use evanesco_ssd::{Emulator, HostOp, SchedRun, Stage};
use evanesco_workloads::TrafficConfig;
use std::fmt::Write as _;

/// Queue depths the tiling gate sweeps (serialized, the default NCQ
/// depth, and deep reordering).
pub const GATE_QDS: [usize; 3] = [1, 8, 32];

/// Minimum fraction of the victims' p99-tail *interference* time that
/// must be blamed on sanitization locks under the storm.
pub const GATE_MIN_SANITIZE_SHARE: f64 = 0.5;

/// Requests kept in the slowest-request digest of the report.
const TOP_K: usize = 5;

/// Deterministic mixed single-device workload: secure writes, reads,
/// and trims over a clustered working set (xorshift; no external RNG).
fn mixed_ops(logical: u64, n: usize, seed: u64) -> Vec<HostOp> {
    let mut s = seed | 1;
    let mut step = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..n)
        .map(|_| {
            let r = step();
            let npages = 1 + (step() % 8);
            let lpa = step() % logical.saturating_sub(npages).max(1);
            match r % 10 {
                0..=4 => HostOp::Write { lpa, npages, secure: true },
                5..=6 => HostOp::Read { lpa, npages },
                _ => HostOp::Trim { lpa, npages },
            }
        })
        .collect()
}

/// One queue depth's tiling sweep.
#[derive(Debug, Clone)]
pub struct QdCell {
    /// Queue depth.
    pub qd: usize,
    /// Anatomy rows checked.
    pub rows: usize,
    /// Rows whose stage sum differed from end-to-end latency (gate: 0).
    pub tiling_violations: usize,
    /// Total per-stage time across all rows, [`Stage::ALL`] order.
    pub stage_ns: [u64; Stage::COUNT],
    /// Total end-to-end time across all rows.
    pub e2e_ns: u64,
}

/// One line of the slowest-request digest.
#[derive(Debug, Clone)]
pub struct TopRow {
    /// Trace id of the request.
    pub trace_id: u64,
    /// Request class label.
    pub kind: &'static str,
    /// End-to-end latency.
    pub e2e: Nanos,
    /// The stage charged the most time.
    pub dominant: &'static str,
    /// Causal chain rendered as text (longest links first).
    pub chain: String,
}

/// One tenant of the storm fleet run.
#[derive(Debug, Clone)]
pub struct StormTenant {
    /// Tenant name.
    pub name: String,
    /// Requests fleet-wide.
    pub requests: u64,
    /// p99 end-to-end latency.
    pub p99: Nanos,
    /// p99-tail per-stage blame, [`Stage::ALL`] order.
    pub tail_blame_ns: [u64; Stage::COUNT],
}

impl StormTenant {
    /// Sanitization's share of the tail's interference time
    /// (sanitize / (sanitize + gc + retry)); 0 when there is none.
    pub fn sanitize_share(&self) -> f64 {
        let san = self.tail_blame_ns[Stage::SanitizeInterference.idx()];
        let total = san
            + self.tail_blame_ns[Stage::GcInterference.idx()]
            + self.tail_blame_ns[Stage::RetryInterference.idx()];
        if total == 0 {
            0.0
        } else {
            san as f64 / total as f64
        }
    }
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct AnatomyBench {
    /// Scale preset name (JSON provenance).
    pub scale_name: String,
    /// Single-device requests per queue depth.
    pub requests: usize,
    /// Tiling sweep, one cell per [`GATE_QDS`] entry.
    pub qd_cells: Vec<QdCell>,
    /// Whether the single-device run was byte-identical with anatomy
    /// on and off (results, completions, submissions, end time).
    pub device_neutral: bool,
    /// Fleet digests with anatomy off / on (must match).
    pub fleet_digests: (u64, u64),
    /// Slowest requests of the qd-8 single-device run.
    pub top: Vec<TopRow>,
    /// Storm fleet tenants, tenant order (rank 0 is the storm).
    pub storm: Vec<StormTenant>,
}

fn simulated_equal(a: &SchedRun, b: &SchedRun) -> bool {
    a.results == b.results
        && a.completions == b.completions
        && a.submits == b.submits
        && a.sim_time == b.sim_time
}

/// The storm fleet: one trim-heavy sanitize-storm neighbor plus two
/// victims, FIFO admission (nothing shields the victims), anatomy on.
fn storm_config(scale: &Scale, requests: usize, anatomy: bool) -> FleetConfig {
    let mut cfg = FleetConfig::noisy_neighbor_demo(2, 2, requests, scale.seed);
    cfg.traffic = TrafficConfig::sanitize_storm(2, requests, scale.seed);
    cfg.mode = QosMode::Fifo;
    cfg.anatomy = anatomy;
    // Offer ~1/4 of the device's nominal drain capacity: enough
    // contention that the storm's lock traffic lands in victim waits,
    // without drowning the tail in pure queueing delay.
    let capacity_pages_per_sec = 1e9 / cfg.drain_ns_per_page() as f64;
    cfg.traffic.base_rate_per_sec = (capacity_pages_per_sec / 4.0).max(1.0);
    cfg
}

/// Requests per device in the storm fleet, at every scale. The storm
/// cell is a *fixed calibrated fixture*, not a throughput sweep: at this
/// volume the tiny fleet device stays inside its over-provisioning, so
/// the victims' tail interference is the storm's lock traffic and
/// sanitize erases. Scaling it up wraps the device and the tail becomes
/// legitimate GC-dominated — a different (uninteresting) regime that the
/// attribution gate is not about. Scale presets only size the
/// single-device tiling/neutrality sweep.
const STORM_REQUESTS: usize = 400;

/// Runs the sweep, the neutrality checks, and the storm attribution.
pub fn run(scale: &Scale, scale_name: &str) -> AnatomyBench {
    let requests = if scale.tiny_blocks { 600 } else { 2000 };
    let fleet_requests = STORM_REQUESTS;
    let cfg = scale.ssd_config();
    let logical = cfg.ftl.logical_pages();
    let ops = mixed_ops(logical, requests, scale.seed.wrapping_mul(0x9E37_79B9).max(1));

    let mut qd_cells = Vec::new();
    let mut top = Vec::new();
    let mut device_neutral = true;
    for qd in GATE_QDS {
        let mut base = Emulator::new(cfg, evanesco_ftl::SanitizePolicy::evanesco());
        let run_off = base.run_scheduled(&ops, qd);

        let mut ssd = Emulator::new(cfg, evanesco_ftl::SanitizePolicy::evanesco());
        ssd.enable_anatomy(ops.len(), TOP_K);
        let run_on = ssd.run_scheduled(&ops, qd);
        device_neutral &= simulated_equal(&run_off, &run_on);

        let an = ssd.take_anatomy().expect("anatomy was enabled");
        let mut cell =
            QdCell { qd, rows: 0, tiling_violations: 0, stage_ns: [0; Stage::COUNT], e2e_ns: 0 };
        for row in an.rows() {
            cell.rows += 1;
            if row.stage_sum() != row.e2e() {
                cell.tiling_violations += 1;
            }
            for s in Stage::ALL {
                cell.stage_ns[s.idx()] += row.stage(s).0;
            }
            cell.e2e_ns += row.e2e().0;
        }
        if qd == 8 {
            top = an.top().iter().take(TOP_K).map(top_row).collect();
        }
        qd_cells.push(cell);
    }

    let fleet_off = run_fleet(&storm_config(scale, fleet_requests, false)).fleet_digest;
    let storm_report = run_fleet(&storm_config(scale, fleet_requests, true));
    let storm = storm_report
        .tenants
        .iter()
        .map(|t| {
            let mut tail = [0u64; Stage::COUNT];
            for s in Stage::ALL {
                tail[s.idx()] = t.tail_blame[s.idx()].0;
            }
            StormTenant {
                name: t.name.clone(),
                requests: t.requests,
                p99: t.latency.percentile(99.0),
                tail_blame_ns: tail,
            }
        })
        .collect();

    AnatomyBench {
        scale_name: scale_name.to_string(),
        requests,
        qd_cells,
        device_neutral,
        fleet_digests: (fleet_off, storm_report.fleet_digest),
        top,
        storm,
    }
}

fn top_row(row: &evanesco_ssd::RequestAnatomy) -> TopRow {
    let dominant = Stage::ALL
        .into_iter()
        .max_by_key(|&s| (row.stage(s), s.idx()))
        .expect("Stage::ALL is non-empty");
    let mut links: Vec<_> = row.chain.iter().collect();
    links.sort_by_key(|l| std::cmp::Reverse(l.dur()));
    let chain = links
        .iter()
        .take(3)
        .map(|l| {
            let who = match l.resource {
                Some(r) => r.name(),
                None => "self".to_string(),
            };
            format!(
                "{} <- {}({}) on {} for {:.1}us{}",
                l.stage.label(),
                l.kind.label(),
                l.cause.label(),
                who,
                l.dur().0 as f64 / 1e3,
                if l.own { " [own]" } else { "" },
            )
        })
        .collect::<Vec<_>>()
        .join("; ");
    TopRow {
        trace_id: row.trace_id,
        kind: row.kind.label(),
        e2e: row.e2e(),
        dominant: dominant.label(),
        chain,
    }
}

impl AnatomyBench {
    /// Aggregate sanitize share over every victim tenant's p99 tail.
    pub fn victim_sanitize_share(&self) -> f64 {
        let mut agg = StormTenant {
            name: String::new(),
            requests: 0,
            p99: Nanos::ZERO,
            tail_blame_ns: [0; Stage::COUNT],
        };
        for t in self.storm.iter().filter(|t| t.name.starts_with("victim")) {
            for (a, b) in agg.tail_blame_ns.iter_mut().zip(t.tail_blame_ns) {
                *a += b;
            }
        }
        agg.sanitize_share()
    }

    /// All gate violations (empty = pass).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for c in &self.qd_cells {
            if c.rows == 0 {
                v.push(format!("tiling: qd {} produced no anatomy rows", c.qd));
            }
            if c.tiling_violations > 0 {
                v.push(format!(
                    "tiling: {} of {} rows at qd {} break stage-sum == e2e",
                    c.tiling_violations, c.rows, c.qd
                ));
            }
        }
        if !self.device_neutral {
            v.push("neutrality: single-device simulated results moved with anatomy on".into());
        }
        if self.fleet_digests.0 != self.fleet_digests.1 {
            v.push(format!(
                "neutrality: fleet digest {:016x} with anatomy off != {:016x} with it on",
                self.fleet_digests.0, self.fleet_digests.1
            ));
        }
        let share = self.victim_sanitize_share();
        if share < GATE_MIN_SANITIZE_SHARE {
            v.push(format!(
                "blame: sanitize share of victim p99-tail interference {share:.3} \
                 below gate {GATE_MIN_SANITIZE_SHARE}"
            ));
        }
        v
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(out, "== Anatomy: per-request stage decomposition with blame ==").unwrap();
        writeln!(out, "{} requests/device, scale {}", self.requests, self.scale_name).unwrap();
        write!(out, "{:>5} {:>7} {:>9}", "qd", "rows", "tile_err").unwrap();
        for s in Stage::ALL {
            write!(out, " {:>20}", s.label()).unwrap();
        }
        writeln!(out).unwrap();
        for c in &self.qd_cells {
            write!(out, "{:>5} {:>7} {:>9}", c.qd, c.rows, c.tiling_violations).unwrap();
            for s in Stage::ALL {
                let share = if c.e2e_ns == 0 {
                    0.0
                } else {
                    100.0 * c.stage_ns[s.idx()] as f64 / c.e2e_ns as f64
                };
                write!(out, " {:>19.1}%", share).unwrap();
            }
            writeln!(out).unwrap();
        }
        writeln!(
            out,
            "neutrality: device {}, fleet {:016x} (off) vs {:016x} (on)",
            if self.device_neutral { "byte-identical" } else { "BROKEN" },
            self.fleet_digests.0,
            self.fleet_digests.1,
        )
        .unwrap();
        writeln!(out, "top {} slowest requests (qd 8):", self.top.len()).unwrap();
        for t in &self.top {
            writeln!(
                out,
                "  #{} {} e2e {:.1}us, dominant {}: {}",
                t.trace_id,
                t.kind,
                t.e2e.0 as f64 / 1e3,
                t.dominant,
                t.chain,
            )
            .unwrap();
        }
        writeln!(out, "storm fleet p99-tail blame (fifo, sanitize_storm neighbor):").unwrap();
        for t in &self.storm {
            writeln!(
                out,
                "  {:>10}: {:>6} reqs, p99 {:>10.1}us, sanitize share {:.3} \
                 (san {:.1}us, gc {:.1}us, retry {:.1}us)",
                t.name,
                t.requests,
                t.p99.0 as f64 / 1e3,
                t.sanitize_share(),
                t.tail_blame_ns[Stage::SanitizeInterference.idx()] as f64 / 1e3,
                t.tail_blame_ns[Stage::GcInterference.idx()] as f64 / 1e3,
                t.tail_blame_ns[Stage::RetryInterference.idx()] as f64 / 1e3,
            )
            .unwrap();
        }
        writeln!(
            out,
            "gate: victim sanitize share {:.3} (minimum {}), tiling+neutrality -> {}",
            self.victim_sanitize_share(),
            GATE_MIN_SANITIZE_SHARE,
            if self.violations().is_empty() { "PASS" } else { "FAIL" },
        )
        .unwrap();
        out
    }

    /// Machine-readable JSON (`BENCH_anatomy.json`), hand-rendered — the
    /// build has no serde.
    pub fn to_json(&self) -> String {
        fn f(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.4}")
            } else {
                "0.0".to_string()
            }
        }
        let mut out = String::new();
        out.push_str("{\n");
        writeln!(out, "  \"bench\": \"anatomy\",").unwrap();
        writeln!(out, "  \"scale\": \"{}\",", self.scale_name).unwrap();
        writeln!(out, "  \"requests\": {},", self.requests).unwrap();
        writeln!(
            out,
            "  \"gate\": {{\"min_sanitize_share\": {}, \"victim_sanitize_share\": {}, \
             \"device_neutral\": {}, \"fleet_neutral\": {}, \"pass\": {}}},",
            f(GATE_MIN_SANITIZE_SHARE),
            f(self.victim_sanitize_share()),
            self.device_neutral,
            self.fleet_digests.0 == self.fleet_digests.1,
            self.violations().is_empty(),
        )
        .unwrap();
        writeln!(out, "  \"tiling\": [").unwrap();
        for (i, c) in self.qd_cells.iter().enumerate() {
            let stages = Stage::ALL
                .into_iter()
                .map(|s| format!("\"{}\": {}", s.label(), c.stage_ns[s.idx()]))
                .collect::<Vec<_>>()
                .join(", ");
            write!(
                out,
                "    {{\"qd\": {}, \"rows\": {}, \"violations\": {}, \"e2e_ns\": {}, \
                 \"stage_ns\": {{{stages}}}}}",
                c.qd, c.rows, c.tiling_violations, c.e2e_ns
            )
            .unwrap();
            out.push_str(if i + 1 < self.qd_cells.len() { ",\n" } else { "\n" });
        }
        writeln!(out, "  ],").unwrap();
        writeln!(out, "  \"top\": [").unwrap();
        for (i, t) in self.top.iter().enumerate() {
            write!(
                out,
                "    {{\"trace_id\": {}, \"kind\": \"{}\", \"e2e_ns\": {}, \
                 \"dominant\": \"{}\", \"chain\": \"{}\"}}",
                t.trace_id,
                t.kind,
                t.e2e.0,
                t.dominant,
                t.chain.replace('\\', "\\\\").replace('"', "\\\""),
            )
            .unwrap();
            out.push_str(if i + 1 < self.top.len() { ",\n" } else { "\n" });
        }
        writeln!(out, "  ],").unwrap();
        writeln!(out, "  \"storm\": [").unwrap();
        for (i, t) in self.storm.iter().enumerate() {
            let blame = Stage::ALL
                .into_iter()
                .map(|s| format!("\"{}\": {}", s.label(), t.tail_blame_ns[s.idx()]))
                .collect::<Vec<_>>()
                .join(", ");
            write!(
                out,
                "    {{\"tenant\": \"{}\", \"requests\": {}, \"p99_ns\": {}, \
                 \"sanitize_share\": {}, \"tail_blame_ns\": {{{blame}}}}}",
                t.name,
                t.requests,
                t.p99.0,
                f(t.sanitize_share()),
            )
            .unwrap();
            out.push_str(if i + 1 < self.storm.len() { ",\n" } else { "\n" });
        }
        writeln!(out, "  ]").unwrap();
        out.push_str("}\n");
        out
    }
}

/// The `anatomy` experiment as printable text (no file output, no gate;
/// the `experiments` binary's subcommand adds both).
pub fn anatomy(scale: &Scale, scale_name: &str) -> String {
    run(scale, scale_name).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_passes_every_gate_with_real_interference() {
        let b = run(&Scale::smoke(), "smoke");
        assert!(b.violations().is_empty(), "{:?}", b.violations());
        assert_eq!(b.qd_cells.len(), GATE_QDS.len());
        for c in &b.qd_cells {
            assert!(c.rows > 0);
            assert_eq!(c.tiling_violations, 0);
            // The decomposition is not degenerate: some time is service,
            // and at qd > 1 some is interference or waiting.
            assert!(c.stage_ns[Stage::ChipService.idx()] > 0, "qd {}: no service time", c.qd);
        }
        assert!(!b.top.is_empty(), "top-K digest is populated");
        assert!(
            b.storm.iter().any(|t| t.tail_blame_ns.iter().sum::<u64>() > 0),
            "storm blame is non-trivial"
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let b = run(&Scale::smoke(), "smoke");
        let j = b.to_json();
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        assert!(j.contains("\"bench\": \"anatomy\""));
        assert!(j.contains("\"pass\": true"));
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "unbalanced braces");
    }
}

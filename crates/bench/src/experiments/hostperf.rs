//! Host wall-clock throughput of the emulator itself (the `hostperf`
//! gate).
//!
//! Every other experiment measures *simulated* performance; this one
//! measures how fast the simulator executes on the host, in
//! simulated-host-ops-per-host-second. The workload is the scheduler
//! experiment's smoke trace (same config, same request mix) driven at
//! queue depths 1 and 8, with the device-flag data plane enabled so the
//! pAP/bAP tables sit on the hot path exactly as they do in a paper-mode
//! run.
//!
//! Wall-clock numbers are machine-dependent, so the gate works on a
//! **machine-normalized speedup-vs-seed ratio**: throughput is divided by
//! the score of a small deterministic CPU calibration loop measured in
//! the same process, and that normalized figure is compared against the
//! value the pre-optimization seed tree produced on the reference
//! machine ([`SEED_NORMALIZED`]). The ratio cancels the host's absolute
//! speed to first order, which is what lets CI gate on it across
//! runners.

use crate::scale::Scale;
use evanesco_core::bap::BapConfig;
use evanesco_core::pap::PapConfig;
use evanesco_ssd::emulator::Emulator;
use evanesco_ssd::sched::HostOp;
use std::time::Instant;

use super::scheduler::{mixed_trace, sched_config};

/// Queue depths measured (qd8 carries the gate).
pub const QUEUE_DEPTHS: [usize; 2] = [1, 8];

/// Queue depth the gate applies to.
pub const GATE_QD: usize = 8;

/// Aspirational machine-normalized speedup over the seed tree at
/// [`GATE_QD`] — the number the dense-table/pooled-buffer rework aimed
/// for. Reported in the artifact but **not** enforced: profile
/// attribution shows the hot loop plateaus near 2.3× because the
/// remaining cost is byte-identity-pinned work (the per-cell Box–Muller
/// draws of the pAP settle model dominate once dispatch and allocation
/// are gone; see EXPERIMENTS.md "hostperf").
pub const TARGET_SPEEDUP: f64 = 5.0;

/// Enforced floor on the machine-normalized speedup at [`GATE_QD`].
/// Set below the measured ~2.3× plateau with margin for runner noise;
/// it exists to catch regressions back toward seed-tree speed, while
/// the drift check against the checked-in baseline catches smaller
/// slides.
pub const GATE_MIN_SPEEDUP: f64 = 1.5;

/// Relative tolerance when comparing a fresh run's speedup ratio against
/// a previously checked-in `BENCH_hostperf.json` (runner noise: the
/// calibration loop and the emulator do not scale identically across
/// microarchitectures, and 1-core CI runners jitter).
pub const DRIFT_TOLERANCE: f64 = 0.5;

/// Machine-normalized throughput of the **seed** (pre-optimization) tree
/// on the smoke trace, per queue depth in [`QUEUE_DEPTHS`] order. Units:
/// simulated host pages per host second, divided by the calibration
/// score of the same process. Measured on the reference machine at the
/// commit immediately before the dense-table rework; the gate ratio is
/// `normalized_now / SEED_NORMALIZED[qd]`.
pub const SEED_NORMALIZED: [f64; 2] = [0.00609, 0.00386];

/// One measured throughput point.
#[derive(Debug, Clone, Copy)]
pub struct HostperfPoint {
    /// Queue depth driven.
    pub qd: usize,
    /// Simulated host pages completed per measurement repetition.
    pub host_pages: u64,
    /// Best (fastest) wall time of one repetition, nanoseconds.
    pub best_wall_ns: u64,
    /// Host throughput: simulated host pages per host second.
    pub pages_per_sec: f64,
    /// Throughput divided by the calibration score.
    pub normalized: f64,
    /// `normalized / SEED_NORMALIZED[i]`.
    pub speedup_vs_seed: f64,
}

/// The full hostperf report.
#[derive(Debug, Clone)]
pub struct HostperfReport {
    /// Scale label (always driven at smoke in CI).
    pub scale_name: String,
    /// Requests per trace replay.
    pub requests: usize,
    /// Measurement repetitions per queue depth (best-of is reported).
    pub reps: usize,
    /// Calibration-loop score of this process (iterations per second).
    pub calib_score: f64,
    /// One point per entry of [`QUEUE_DEPTHS`].
    pub points: Vec<HostperfPoint>,
}

/// Deterministic CPU calibration loop: integer xorshift mixing over a
/// small working set, scored in iterations per second. The loop shape is
/// frozen — changing it invalidates [`SEED_NORMALIZED`].
pub fn calibrate() -> f64 {
    // Warm up, then take the best of 3 windows of 2^21 iterations each.
    let mut best_ns = u64::MAX;
    let mut sink = 0u64;
    for round in 0..4 {
        let t0 = Instant::now();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut acc = 0u64;
        for i in 0..(1u64 << 21) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc = acc.wrapping_add(x).rotate_left((i & 63) as u32);
        }
        sink = sink.wrapping_add(acc);
        let ns = t0.elapsed().as_nanos() as u64;
        if round > 0 {
            best_ns = best_ns.min(ns);
        }
    }
    std::hint::black_box(sink);
    (1u64 << 21) as f64 / (best_ns as f64 / 1e9)
}

/// Builds the device-flag-mode emulator the trace is replayed against.
pub fn device(scale: &Scale) -> Emulator {
    let cfg = sched_config(scale);
    let mut ssd = Emulator::new(cfg, evanesco_ftl::SanitizePolicy::evanesco());
    ssd.enable_device_flags(PapConfig::paper(), BapConfig::paper(), scale.seed);
    ssd
}

/// Replays `ops` at `qd` on a fresh device; returns simulated host pages
/// completed. This is the measured region — one call is one repetition.
pub fn replay(scale: &Scale, ops: &[HostOp], qd: usize) -> u64 {
    let mut ssd = device(scale);
    let run = ssd.run_scheduled(ops, qd);
    ssd.flush_coalesced_locks();
    run.host_pages
}

/// Runs the suite: calibration, then best-of-`reps` replay per queue
/// depth.
pub fn run(scale: &Scale, scale_name: &str, reps: usize) -> HostperfReport {
    let logical = device(scale).logical_pages();
    let requests = ((logical / 2) as usize).clamp(512, 20_000);
    let ops = mixed_trace(logical, requests, scale.seed);
    let calib_score = calibrate();
    let mut points = Vec::new();
    for (i, &qd) in QUEUE_DEPTHS.iter().enumerate() {
        let mut host_pages = 0u64;
        let mut best_wall_ns = u64::MAX;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            host_pages = replay(scale, &ops, qd);
            best_wall_ns = best_wall_ns.min(t0.elapsed().as_nanos() as u64);
        }
        let pages_per_sec = host_pages as f64 / (best_wall_ns as f64 / 1e9);
        let normalized = pages_per_sec / calib_score;
        points.push(HostperfPoint {
            qd,
            host_pages,
            best_wall_ns,
            pages_per_sec,
            normalized,
            speedup_vs_seed: normalized / SEED_NORMALIZED[i],
        });
    }
    HostperfReport { scale_name: scale_name.to_string(), requests, reps, calib_score, points }
}

impl HostperfReport {
    /// The gate ratio: speedup-vs-seed at [`GATE_QD`].
    pub fn gate_speedup(&self) -> f64 {
        self.points.iter().find(|p| p.qd == GATE_QD).map(|p| p.speedup_vs_seed).unwrap_or(0.0)
    }

    /// Whether the wall-clock gate holds (≥ [`GATE_MIN_SPEEDUP`]× at
    /// [`GATE_QD`]).
    pub fn gate_passes(&self) -> bool {
        self.gate_speedup() >= GATE_MIN_SPEEDUP
    }

    /// Compares this run's per-depth speedup ratios against a previously
    /// written `BENCH_hostperf.json`; returns the relative drifts that
    /// exceed [`DRIFT_TOLERANCE`] (empty = within tolerance).
    pub fn drift_against(&self, baseline_json: &str) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.points {
            let key = format!("\"qd\": {}", p.qd);
            let Some(entry) = baseline_json.split('{').find(|s| s.contains(&key)) else {
                out.push(format!("qd{}: missing from baseline", p.qd));
                continue;
            };
            let Some(base) = extract_number(entry, "speedup_vs_seed") else {
                out.push(format!("qd{}: baseline has no speedup_vs_seed", p.qd));
                continue;
            };
            if base <= 0.0 {
                out.push(format!("qd{}: baseline speedup {base} not positive", p.qd));
                continue;
            }
            let rel = (p.speedup_vs_seed - base).abs() / base;
            if rel > DRIFT_TOLERANCE {
                out.push(format!(
                    "qd{}: speedup_vs_seed {:.3} drifted {:.0}% from baseline {:.3} (tolerance {:.0}%)",
                    p.qd,
                    p.speedup_vs_seed,
                    rel * 100.0,
                    base,
                    DRIFT_TOLERANCE * 100.0
                ));
            }
        }
        out
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("== Hostperf: wall-clock simulated-host-ops throughput ==\n");
        s.push_str(&format!(
            "scale={}, requests={}, reps={}, calib={:.0}/s\n",
            self.scale_name, self.requests, self.reps, self.calib_score
        ));
        s.push_str("qd | host_pages |    pages/s | normalized | vs seed\n");
        s.push_str("---+------------+------------+------------+--------\n");
        for p in &self.points {
            s.push_str(&format!(
                "{:>2} | {:>10} | {:>10.0} | {:>10.6} | {:>6.2}x\n",
                p.qd, p.host_pages, p.pages_per_sec, p.normalized, p.speedup_vs_seed
            ));
        }
        s.push_str(&format!(
            "gate: {:.2}x >= {:.1}x at qd{} -> {} (aspirational target {:.1}x)\n",
            self.gate_speedup(),
            GATE_MIN_SPEEDUP,
            GATE_QD,
            if self.gate_passes() { "PASS" } else { "FAIL" },
            TARGET_SPEEDUP,
        ));
        s
    }

    /// Machine-readable JSON (`BENCH_hostperf.json`).
    pub fn to_json(&self) -> String {
        let f = |v: f64| {
            if v.is_finite() {
                format!("{v:.4}")
            } else {
                "null".to_string()
            }
        };
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"experiment\": \"hostperf\",\n");
        s.push_str(&format!("  \"scale\": \"{}\",\n", self.scale_name));
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"reps\": {},\n", self.reps));
        s.push_str(&format!("  \"gate_qd\": {GATE_QD},\n"));
        s.push_str(&format!("  \"target_speedup\": {},\n", f(TARGET_SPEEDUP)));
        s.push_str(&format!("  \"gate_min_speedup\": {},\n", f(GATE_MIN_SPEEDUP)));
        s.push_str(&format!("  \"gate_speedup\": {},\n", f(self.gate_speedup())));
        s.push_str(&format!(
            "  \"gate_passes\": {},\n",
            if self.gate_passes() { "true" } else { "false" }
        ));
        s.push_str("  \"seed_normalized\": [");
        s.push_str(&SEED_NORMALIZED.iter().map(|&v| f(v)).collect::<Vec<_>>().join(", "));
        s.push_str("],\n");
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"qd\": {},\n", p.qd));
            s.push_str(&format!("      \"host_pages\": {},\n", p.host_pages));
            s.push_str(&format!("      \"best_wall_ns\": {},\n", p.best_wall_ns));
            s.push_str(&format!("      \"pages_per_sec\": {},\n", f(p.pages_per_sec)));
            s.push_str(&format!("      \"normalized\": {},\n", f(p.normalized)));
            s.push_str(&format!("      \"speedup_vs_seed\": {}\n", f(p.speedup_vs_seed)));
            s.push_str(if i + 1 < self.points.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

fn extract_number(hay: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = hay.find(&pat)? + pat.len();
    let rest = hay[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Experiment entry point: render the table, emit the artifact text.
pub fn hostperf(scale: &Scale, scale_name: &str) -> String {
    let reps = if scale_name == "smoke" { 3 } else { 2 };
    let report = run(scale, scale_name, reps);
    report.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> HostperfReport {
        HostperfReport {
            scale_name: "smoke".into(),
            requests: 100,
            reps: 1,
            calib_score: 1e9,
            points: QUEUE_DEPTHS
                .iter()
                .enumerate()
                .map(|(i, &qd)| HostperfPoint {
                    qd,
                    host_pages: 1000,
                    best_wall_ns: 1_000_000,
                    pages_per_sec: 1e6,
                    normalized: 1e-3,
                    speedup_vs_seed: 1e-3 / SEED_NORMALIZED[i],
                })
                .collect(),
        }
    }

    #[test]
    fn json_is_well_formed_and_has_gate_fields() {
        let j = tiny_report().to_json();
        assert!(j.contains("\"experiment\": \"hostperf\""));
        assert!(j.contains("\"gate_qd\": 8"));
        assert!(j.contains("\"speedup_vs_seed\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn drift_check_flags_large_ratio_changes_only() {
        let r = tiny_report();
        let base = r.to_json();
        assert!(r.drift_against(&base).is_empty(), "self-comparison must not drift");
        let mut moved = r.clone();
        for p in &mut moved.points {
            p.speedup_vs_seed *= 1.0 + DRIFT_TOLERANCE * 4.0;
        }
        assert!(!moved.drift_against(&base).is_empty(), "4x-tolerance move must be flagged");
    }

    #[test]
    fn calibration_is_positive_and_stable_shape() {
        let s = calibrate();
        assert!(s > 0.0 && s.is_finite());
    }

    #[test]
    fn replay_smoke_completes_and_counts_pages() {
        let scale = Scale::smoke();
        let logical = device(&scale).logical_pages();
        let ops = mixed_trace(logical, 64, scale.seed);
        let pages = replay(&scale, &ops, 8);
        assert!(pages > 0);
        assert_eq!(pages, replay(&scale, &ops, 8), "replay is deterministic");
    }
}

//! Ablation studies for the design choices called out in DESIGN.md.

use crate::scale::Scale;
use evanesco_core::calibration::DesignPoint;
use evanesco_core::dse::RETENTION_REQUIREMENT_DAYS;
use evanesco_core::majority::transistor_estimate;
use evanesco_core::pap::majority_failure_prob;
use evanesco_ftl::SanitizePolicy;
use evanesco_ssd::Emulator;
use evanesco_workloads::generate::generate;
use evanesco_workloads::replay::replay;
use evanesco_workloads::WorkloadSpec;
use std::fmt::Write;

/// Ablation: flag-cell redundancy `k` — retention robustness vs area.
pub fn ablation_k() -> String {
    let mut out = String::new();
    writeln!(out, "== Ablation: pAP flag redundancy k (5-year majority-failure prob) ==").unwrap();
    writeln!(
        out,
        "{:<6} {:>16} {:>16} {:>14}",
        "k", "selected(Vp4)", "weak(Vp3,100)", "transistors"
    )
    .unwrap();
    for k in [1usize, 3, 5, 7, 9, 11] {
        let sel = majority_failure_prob(DesignPoint::new(4, 100), RETENTION_REQUIREMENT_DAYS, k);
        let weak = majority_failure_prob(DesignPoint::new(3, 100), RETENTION_REQUIREMENT_DAYS, k);
        writeln!(out, "{:<6} {:>16.3e} {:>16.3e} {:>14}", k, sel, weak, transistor_estimate(k))
            .unwrap();
    }
    writeln!(
        out,
        "\nthe paper's k = 9 leaves orders of magnitude of margin at the selected point\n\
         while the majority gate stays ~200 transistors."
    )
    .unwrap();
    out
}

/// Ablation: bLock trigger threshold (minimum pending pLocks before the
/// lock manager prefers one bLock).
pub fn ablation_blocktrig(scale: &Scale) -> String {
    let mut out = String::new();
    writeln!(out, "== Ablation: bLock trigger threshold (Mobile workload) ==").unwrap();
    writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>14} {:>12}",
        "min_pLocks", "pLocks", "bLocks", "lock time[ms]", "norm IOPS"
    )
    .unwrap();
    let base_cfg = scale.ssd_config();
    let logical = base_cfg.ftl.logical_pages();
    let spec = WorkloadSpec::mobile();
    let trace = generate(&spec, logical, scale.main_write_pages(logical), scale.seed);
    // Baseline for normalization.
    let mut base_ssd = Emulator::new(base_cfg, SanitizePolicy::none());
    let base = replay(&mut base_ssd, &trace);
    // Mobile's trims arrive in large per-block groups, so only thresholds
    // beyond those group sizes (or "never") change the decision.
    for min in [1usize, 4, 64, 192, 384, usize::MAX] {
        let mut cfg = scale.ssd_config();
        cfg.ftl.block_min_plocks = min;
        let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
        let r = replay(&mut ssd, &trace);
        let t = cfg.ftl.timing;
        let lock_ms = (r.plocks * t.t_plock.0 + r.blocks_locked * t.t_block.0) as f64 / 1e6;
        let label = if min == usize::MAX { "never".to_string() } else { min.to_string() };
        writeln!(
            out,
            "{:<10} {:>10} {:>10} {:>14.2} {:>12.4}",
            label,
            r.plocks,
            r.blocks_locked,
            lock_ms,
            r.iops_vs(&base)
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nthe paper's rule (threshold 4 = ceil(tbLock/tpLock)+1) minimizes total lock\n\
         time; 'never' reproduces secSSD_nobLock."
    )
    .unwrap();
    out
}

/// Ablation: lazy vs eager GC erase — T_insecure exposure vs open-interval
/// reliability.
pub fn ablation_lazy(scale: &Scale) -> String {
    use evanesco_workloads::replay::replay_with;
    use evanesco_workloads::vertrace::VerTrace;

    let mut out = String::new();
    writeln!(out, "== Ablation: lazy vs eager GC erase (baseline FTL, FileServer) ==").unwrap();
    writeln!(
        out,
        "{:<8} {:>10} {:>14} {:>18} {:>20}",
        "mode", "erases", "UV Tins avg", "mean open intvl", "invalid pages left"
    )
    .unwrap();
    for eager in [false, true] {
        let mut cfg = scale.ssd_config();
        cfg.ftl.eager_gc_erase = eager;
        cfg.track_tags = false;
        let mut ssd = Emulator::new(cfg, SanitizePolicy::none());
        let logical = ssd.logical_pages();
        let trace = generate(
            &WorkloadSpec::file_server(),
            logical,
            scale.main_write_pages(logical),
            scale.seed,
        );
        let mut vt = VerTrace::new();
        let r = replay_with(&mut ssd, &trace, &mut vt);
        let report = vt.report(logical);
        let open = ssd
            .device_mut()
            .mean_open_interval()
            .map(|n| n.to_string())
            .unwrap_or_else(|| "-".to_string());
        writeln!(
            out,
            "{:<8} {:>10} {:>14.4} {:>18} {:>20}",
            if eager { "eager" } else { "lazy" },
            r.erases,
            report.uv.tinsec_avg,
            open,
            ssd.ftl().invalid_pages()
        )
        .unwrap();
    }
    writeln!(
        out,
        "\neager erase shortens the insecure window but lengthens nothing else it can\n\
         control — the cost is the erase-to-program open interval (paper Fig. 10: up to\n\
         +30% RBER), which lazy erase keeps near zero. Evanesco closes the insecure\n\
         window *without* giving up lazy erase."
    )
    .unwrap();
    out
}

/// Ablation: GC victim-selection policy sensitivity of the Figure-14
/// ratios (greedy vs cost-benefit).
pub fn ablation_gc(scale: &Scale) -> String {
    use evanesco_ftl::config::GcVictimPolicy;

    let mut out = String::new();
    writeln!(out, "== Ablation: GC victim policy (DBServer workload) ==").unwrap();
    writeln!(
        out,
        "{:<14} {:>12} {:>10} {:>10} {:>16}",
        "victim policy", "policy", "WAF", "erases", "norm IOPS"
    )
    .unwrap();
    let base_cfg = scale.ssd_config();
    let logical = base_cfg.ftl.logical_pages();
    let trace =
        generate(&WorkloadSpec::db_server(), logical, scale.main_write_pages(logical), scale.seed);
    for victim in [GcVictimPolicy::Greedy, GcVictimPolicy::CostBenefit] {
        let mut cfg = scale.ssd_config();
        cfg.ftl.gc_victim = victim;
        let mut base_ssd = Emulator::new(cfg, SanitizePolicy::none());
        let base = replay(&mut base_ssd, &trace);
        for policy in [SanitizePolicy::evanesco(), SanitizePolicy::scrub()] {
            let mut ssd = Emulator::new(cfg, policy);
            let r = replay(&mut ssd, &trace);
            writeln!(
                out,
                "{:<14} {:>12} {:>10.3} {:>10} {:>16.4}",
                format!("{victim:?}"),
                policy.to_string(),
                r.waf,
                r.erases,
                r.iops_vs(&base)
            )
            .unwrap();
        }
    }
    writeln!(
        out,
        "\nthe secSSD-vs-scrSSD gap is insensitive to the victim policy: the cost is\n\
         sanitization traffic, not GC heuristics."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_gc_runs_both_policies() {
        let s = ablation_gc(&Scale::smoke());
        assert!(s.contains("Greedy"));
        assert!(s.contains("CostBenefit"));
    }

    #[test]
    fn ablation_k_shows_margin_growth() {
        let s = ablation_k();
        assert!(s.contains("transistors"));
        assert!(s.lines().count() > 8);
    }

    #[test]
    fn ablation_blocktrig_includes_never() {
        let s = ablation_blocktrig(&Scale::smoke());
        assert!(s.contains("never"));
    }

    #[test]
    fn ablation_lazy_contrasts_modes() {
        let s = ablation_lazy(&Scale::smoke());
        assert!(s.contains("lazy"));
        assert!(s.contains("eager"));
    }
}

//! Device busy-time breakdown per SSD variant — the mechanism behind
//! Figure 14(a): *where* each policy spends the device's time.

use crate::scale::Scale;
use evanesco_ftl::SanitizePolicy;
use evanesco_ssd::Emulator;
use evanesco_workloads::generate::generate;
use evanesco_workloads::replay::replay;
use evanesco_workloads::WorkloadSpec;
use std::fmt::Write;

/// Busy-time composition table for the DBServer workload.
pub fn breakdown(scale: &Scale) -> String {
    let mut out = String::new();
    writeln!(out, "== Device busy-time breakdown (DBServer, % of accumulated busy time) ==")
        .unwrap();
    writeln!(
        out,
        "{:<16} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "policy", "read", "program", "erase", "pLock", "bLock", "scrub", "xfer"
    )
    .unwrap();
    let cfg = scale.ssd_config();
    let logical = cfg.ftl.logical_pages();
    let trace =
        generate(&WorkloadSpec::db_server(), logical, scale.main_write_pages(logical), scale.seed);
    for policy in [
        SanitizePolicy::none(),
        SanitizePolicy::evanesco(),
        SanitizePolicy::evanesco_no_block(),
        SanitizePolicy::scrub(),
        SanitizePolicy::erase_based(),
    ] {
        let mut ssd = Emulator::new(cfg, policy);
        replay(&mut ssd, &trace);
        let b = ssd.device_mut().time_breakdown();
        let total = b.total().0.max(1) as f64;
        let pct = |n: evanesco_nand::timing::Nanos| 100.0 * n.0 as f64 / total;
        writeln!(
            out,
            "{:<16} {:>7.1}% {:>8.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            policy.to_string(),
            pct(b.read),
            pct(b.program),
            pct(b.erase),
            pct(b.plock),
            pct(b.block),
            pct(b.scrub),
            pct(b.xfer)
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nerSSD's time is dominated by relocation programs + forced erases; scrSSD adds\n\
         sibling-copy programs; secSSD's lock overhead is a few percent of busy time."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_shows_policy_signatures() {
        let s = breakdown(&Scale::smoke());
        assert!(s.contains("secSSD"));
        assert!(s.contains("erSSD"));
        // The baseline row spends no time on locks or scrubs.
        let base = s.lines().find(|l| l.starts_with("baseline")).unwrap();
        assert!(base.contains(" 0.0%"));
    }
}

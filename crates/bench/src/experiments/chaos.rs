//! The `chaos` experiment: the metadata-corruption storm matrix and its
//! zero-silent-wrong-data gate (`BENCH_chaos.json`).
//!
//! Four legs, all deterministic:
//!
//! 1. **Storm matrix** — low/mid/high corruption rates × ±chip-fault
//!    storm × ±power cut. Cells without a power cut run a **differential
//!    twin**: the same scheduled trace on an uncorrupted device, with
//!    per-request results and a full logical readback compared
//!    afterwards — any mismatch is a *silent wrong data* event and fails
//!    the gate. Power-cut cells cannot be twin-diffed (the cut tears
//!    in-flight state by design), so they gate on post-recovery
//!    contracts instead: acked secure deletes stay attacker-
//!    unrecoverable, the device keeps serving, and the accounting
//!    identity holds.
//! 2. **Queue-depth invariance** — the worst non-cut cell replayed at
//!    qd1 and qd8 must inject identically and serve identically
//!    (results + readback), with the accounting identity holding at
//!    both depths. Repair *cost* counters are exempt: what a repair has
//!    to rebuild depends on the FTL state at the injection boundary,
//!    and dispatch order legitimately differs across queue depths.
//! 3. **Watchdog** — deadline failures are typed and reconcile exactly
//!    (`stalls == aborts == retries + failures`), and a zero-rate
//!    watchdog is byte-identical to no watchdog at all.
//! 4. **Checkpoint salvage sweep** — single-byte flips over a valid
//!    checkpoint must yield a typed error or a consistent salvage,
//!    never a silently wrong restore.
//!
//! Every identity the gate checks is also exported per cell in the JSON
//! artifact, so CI uploads carry the full evidence, not just a verdict.

use crate::scale::Scale;
use evanesco_core::fault::CorruptionConfig;
use evanesco_ftl::config::FaultConfig;
use evanesco_ftl::observer::NullObserver;
use evanesco_ftl::SanitizePolicy;
use evanesco_nand::timing::Nanos;
use evanesco_ssd::emulator::Emulator;
use evanesco_ssd::sched::OpResult;
use evanesco_ssd::watchdog::DeadlineConfig;
use std::collections::HashSet;

use super::scheduler::{mixed_trace, sched_config};

/// Corruption rates (per op boundary) for the low/mid/high storm rows.
pub const RATES: [f64; 3] = [0.05, 0.15, 0.4];

/// Queue depth the twin-diff cells run at.
pub const CELL_QD: usize = 4;

/// Chip-fault axis: pLock / erase command-failure probabilities dialed
/// in when a cell runs with a concurrent chip fault storm. Every failed
/// erase retires its block for good, and the high-rate corruption cells
/// drive thousands of repair-scan erases, so this is kept low enough
/// (together with the widened spare pool below) that grown-bad
/// retirement cannot exhaust a chip mid-cell.
pub const CHIP_FAULT_RATE: f64 = 0.02;

/// Over-provisioning for chaos devices: wider than the scheduler
/// experiments' 12.5 % so the ±chip-fault axis has block-retirement
/// headroom across the whole storm matrix.
pub const CHAOS_OP_RATIO: f64 = 0.25;

/// One cell of the storm matrix.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Corruption rate per op boundary.
    pub rate: f64,
    /// Whether a chip fault storm ran concurrently.
    pub chip_faults: bool,
    /// Whether a power cut interrupted the run.
    pub power_cut: bool,
    /// Corruptions injected (model view == FtlStats view, checked).
    pub injected: u64,
    /// Corruptions detected by seals or the audit scrubber.
    pub detected: u64,
    /// Repairs rebuilt from on-flash OOB.
    pub from_oob: u64,
    /// Repairs re-derived from RAM.
    pub rederived: u64,
    /// Failed repairs (degraded to read-only).
    pub unrecoverable: u64,
    /// Insecurely trimmed mappings a repair resurrected and the guard
    /// pruned before they could serve.
    pub resurrections_pruned: u64,
    /// Audit-scrubber divergences (should stay 0: seals catch first).
    pub audit_divergences: u64,
    /// Twin-diff mismatches (results or readback) — the gate's silent
    /// wrong-data count. Power-cut cells count post-recovery contract
    /// violations here instead.
    pub silent_wrong_data: u64,
    /// injected == detected == from_oob + rederived + unrecoverable,
    /// and the injector's own count agrees with FtlStats.
    pub accounting_ok: bool,
}

/// Watchdog leg results.
#[derive(Debug, Clone)]
pub struct WatchdogLeg {
    /// Stalls injected at the gate rate.
    pub stalls_injected: u64,
    /// Attempts aborted at their deadline.
    pub aborts: u64,
    /// Aborted attempts retried.
    pub retries: u64,
    /// Requests failed by deadline.
    pub deadline_failures: u64,
    /// `TimedOut` results observed (must equal `deadline_failures`).
    pub timed_out_results: u64,
    /// stalls == aborts == retries + failures.
    pub reconciles: bool,
    /// qd1 and qd8 produced identical results and stats.
    pub qd_invariant: bool,
    /// A zero-rate watchdog left results and sim time byte-identical.
    pub timing_neutral: bool,
}

/// Checkpoint salvage-sweep leg results.
#[derive(Debug, Clone)]
pub struct SalvageLeg {
    /// Byte positions flipped.
    pub flips: u64,
    /// Flips answered by a typed strict-restore error.
    pub typed_errors: u64,
    /// Flips answered by a successful, consistent salvage.
    pub salvages: u64,
    /// Flips that produced neither (silent wrong restore) — gate fails
    /// unless 0.
    pub violations: u64,
}

/// The full chaos report.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Scale label.
    pub scale_name: String,
    /// Requests per twin-diff cell.
    pub requests: usize,
    /// The storm matrix.
    pub cells: Vec<ChaosCell>,
    /// The worst non-cut cell replayed at qd1 vs qd8 matched exactly.
    pub qd_invariant: bool,
    /// Watchdog leg.
    pub watchdog: WatchdogLeg,
    /// Checkpoint salvage sweep.
    pub salvage: SalvageLeg,
}

fn device(scale: &Scale, chip_faults: bool) -> Emulator {
    let mut cfg = sched_config(scale);
    cfg.ftl.op_ratio = CHAOS_OP_RATIO;
    if chip_faults {
        cfg.ftl.faults = FaultConfig {
            plock_fail: CHIP_FAULT_RATE,
            erase_fail: CHIP_FAULT_RATE,
            seed: scale.seed ^ 0xC407,
            ..FaultConfig::none()
        };
    }
    Emulator::new(cfg, SanitizePolicy::evanesco())
}

fn storm_seed(scale: &Scale, rate: f64, chip_faults: bool) -> u64 {
    scale.seed ^ (rate.to_bits().rotate_left(17)) ^ u64::from(chip_faults) << 7
}

/// Reads back every logical page in chunks; returns the flat tag view.
fn readback(ssd: &mut Emulator) -> Vec<Option<u64>> {
    let logical = ssd.logical_pages();
    let mut out = Vec::with_capacity(logical as usize);
    let mut l = 0u64;
    while l < logical {
        let n = 64.min(logical - l);
        out.extend(ssd.read(l, n));
        l += n;
    }
    out
}

fn cell_from_stats(ssd: &Emulator, rate: f64, chip_faults: bool, power_cut: bool) -> ChaosCell {
    let f = ssd.ftl().stats();
    let model = ssd.chaos_stats().expect("chaos armed");
    ChaosCell {
        rate,
        chip_faults,
        power_cut,
        injected: f.meta_corruptions_injected,
        detected: f.meta_corruptions_detected,
        from_oob: f.meta_repairs_from_oob,
        rederived: f.meta_repairs_rederived,
        unrecoverable: f.meta_unrecoverable,
        resurrections_pruned: f.meta_resurrections_pruned,
        audit_divergences: f.audit_divergences,
        silent_wrong_data: 0,
        accounting_ok: f.meta_accounting_balanced()
            && model.injected == f.meta_corruptions_injected,
    }
}

/// One twin-diff cell: the same trace on an armed device and a plain
/// one; count every per-request or readback mismatch.
fn run_twin_cell(scale: &Scale, requests: usize, rate: f64, chip_faults: bool) -> ChaosCell {
    let mut plain = device(scale, chip_faults);
    let mut noisy = device(scale, chip_faults);
    noisy.enable_chaos(CorruptionConfig::storm(rate, storm_seed(scale, rate, chip_faults)));
    let ops = mixed_trace(plain.logical_pages(), requests, scale.seed ^ 0xCE11);
    let ra = plain.run_scheduled(&ops, CELL_QD);
    let rb = noisy.run_scheduled(&ops, CELL_QD);
    let mut silent =
        ra.results.iter().zip(rb.results.iter()).filter(|(a, b)| a != b).count() as u64;
    silent += readback(&mut plain)
        .iter()
        .zip(readback(&mut noisy).iter())
        .filter(|(a, b)| a != b)
        .count() as u64;
    // The readback itself runs guarded ops (injections keep firing), so
    // the settling pass must come after it for the accounting identity.
    noisy.chaos_finalize();
    let mut cell = cell_from_stats(&noisy, rate, chip_faults, false);
    cell.silent_wrong_data = silent;
    cell
}

/// One power-cut cell: a deterministic direct-path script with a cut in
/// the middle; gates on post-recovery contracts (no twin possible).
fn run_cut_cell(scale: &Scale, rate: f64, chip_faults: bool) -> ChaosCell {
    let mut ssd = device(scale, chip_faults);
    ssd.enable_chaos(CorruptionConfig::storm(rate, storm_seed(scale, rate, chip_faults) ^ 0xCC));
    let logical = ssd.logical_pages();
    let span = logical.min(48);
    // Phase 1 (fully acked before the cut): secure and insecure writes,
    // then secure deletes over the first third of the span.
    let mut dead_secure: HashSet<u64> = HashSet::new();
    let mut live_secure: Vec<(u64, u64)> = Vec::new(); // (lpa, tag)
    let mut x = scale.seed | 1;
    for i in 0..span {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let secure = i % 2 == 0;
        for (tag, acked) in ssd.write_tracked(i, 1, secure) {
            if acked && secure {
                live_secure.push((i, tag));
            }
        }
    }
    for lpa in 0..span / 3 {
        if ssd.trim_with(&mut NullObserver, lpa, 1) {
            // The trim ack covers every tag previously written there.
            dead_secure.extend(live_secure.iter().filter(|&&(l, _)| l == lpa).map(|&(_, t)| t));
        }
    }
    // Arm the cut a hair into phase 2, then write until the lights go out.
    let now = ssd.device().simulated_time();
    ssd.power_cut_at(now + Nanos::from_micros(200));
    let mut spins = 0u32;
    while !ssd.powered_off() && spins < 10_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let _ = ssd.write_tracked(span / 3 + x % (span / 2), 1, x.is_multiple_of(3));
        spins += 1;
    }
    let mut violations = 0u64;
    if !ssd.powered_off() {
        violations += 1; // the cut never landed: the cell measured nothing
    }
    let _ = ssd.recover();
    // Contract 1: no acked secure delete is attacker-recoverable.
    let recoverable = ssd.attacker_recoverable_tags();
    violations += dead_secure.intersection(&recoverable).count() as u64;
    // Contract 2: the device still serves after corruption + cut.
    if !ssd.write_tracked(0, 1, true)[0].1 {
        violations += 1;
    }
    ssd.chaos_finalize();
    let mut cell = cell_from_stats(&ssd, rate, chip_faults, true);
    cell.silent_wrong_data = violations;
    cell
}

/// The worst non-cut cell at qd1 vs qd8. The host-visible contract must
/// match exactly: per-request results, the full readback, and the number
/// of injections drawn (the draw stream is keyed on the op-boundary
/// ordinal alone). Device-work counters are *not* compared — a repair's
/// cost depends on the FTL state at the injection boundary, and dispatch
/// order legitimately differs across queue depths — but the accounting
/// identity must hold at both depths.
fn run_qd_invariance(scale: &Scale, requests: usize) -> bool {
    let rate = RATES[RATES.len() - 1];
    let run = |qd: usize| {
        let mut ssd = device(scale, true);
        ssd.enable_chaos(CorruptionConfig::storm(rate, storm_seed(scale, rate, true)));
        let ops = mixed_trace(ssd.logical_pages(), requests, scale.seed ^ 0xCE11);
        let r = ssd.run_scheduled(&ops, qd);
        let rb = readback(&mut ssd);
        ssd.chaos_finalize();
        let f = ssd.ftl().stats();
        let balanced = f.meta_accounting_balanced()
            && ssd.chaos_stats().expect("chaos armed").injected == f.meta_corruptions_injected;
        (r.results, rb, f.meta_corruptions_injected, balanced)
    };
    let (res1, rb1, inj1, ok1) = run(1);
    let (res8, rb8, inj8, ok8) = run(8);
    res1 == res8 && rb1 == rb8 && inj1 == inj8 && ok1 && ok8
}

fn run_watchdog_leg(scale: &Scale, requests: usize) -> WatchdogLeg {
    let ops = mixed_trace(device(scale, false).logical_pages(), requests, scale.seed ^ 0x0DD);
    // Timing neutrality: a zero-rate watchdog changes nothing.
    let bare = {
        let mut ssd = device(scale, false);
        ssd.run_scheduled(&ops, 8)
    };
    let zeroed = {
        let mut ssd = device(scale, false);
        ssd.enable_watchdog(DeadlineConfig::for_tests(scale.seed, 0.0));
        ssd.run_scheduled(&ops, 8)
    };
    let timing_neutral = bare.results == zeroed.results && bare.sim_time == zeroed.sim_time;
    // Failure accounting at a rate that exercises retries and failures.
    let run = |qd: usize| {
        let mut ssd = device(scale, false);
        ssd.enable_watchdog(DeadlineConfig::for_tests(scale.seed ^ 0xF00D, 0.3));
        let r = ssd.run_scheduled(&ops, qd);
        (r.results, ssd.watchdog_stats().expect("watchdog armed"))
    };
    let (res1, st1) = run(1);
    let (res8, st8) = run(8);
    let timed_out = res8.iter().filter(|r| matches!(r, OpResult::TimedOut)).count() as u64;
    WatchdogLeg {
        stalls_injected: st8.stalls_injected,
        aborts: st8.aborts,
        retries: st8.retries,
        deadline_failures: st8.deadline_failures,
        timed_out_results: timed_out,
        reconciles: st8.reconciles() && st8.deadline_failures == timed_out,
        qd_invariant: res1 == res8 && st1 == st8,
        timing_neutral,
    }
}

/// Single-byte-flip sweep over a freshly written checkpoint: every flip
/// must be answered by a typed strict error or a consistent salvage.
fn run_salvage_sweep(scale: &Scale) -> SalvageLeg {
    let mut ssd = device(scale, false);
    let ops = mixed_trace(ssd.logical_pages(), 200, scale.seed ^ 0x5A17);
    let _ = ssd.run_scheduled(&ops, 4);
    let bytes = ssd.save_checkpoint();
    let stride = (bytes.len() / 96).max(1);
    let mut leg = SalvageLeg { flips: 0, typed_errors: 0, salvages: 0, violations: 0 };
    for pos in (0..bytes.len()).step_by(stride) {
        leg.flips += 1;
        let mut dam = bytes.clone();
        dam[pos] ^= 0x40;
        // The strict path must reject every flip with a typed error.
        if Emulator::restore_checkpoint(&dam).is_ok() {
            leg.violations += 1;
            continue;
        }
        leg.typed_errors += 1;
        // The salvaging path may additionally rescue optional sections.
        if let Ok((mut rec, report)) = Emulator::restore_checkpoint_salvaging(&dam) {
            if report.is_clean() || rec.write_tracked(0, 1, true).is_empty() {
                leg.violations += 1; // a salvage must be reported and serve
            } else {
                leg.salvages += 1;
            }
        }
    }
    leg
}

/// Runs the whole suite.
pub fn run(scale: &Scale, scale_name: &str) -> ChaosReport {
    let logical = device(scale, false).logical_pages();
    let requests = ((logical / 2) as usize).clamp(256, 2_000);
    let mut cells = Vec::new();
    for &rate in &RATES {
        for chip_faults in [false, true] {
            cells.push(run_twin_cell(scale, requests, rate, chip_faults));
            cells.push(run_cut_cell(scale, rate, chip_faults));
        }
    }
    ChaosReport {
        scale_name: scale_name.to_string(),
        requests,
        cells,
        qd_invariant: run_qd_invariance(scale, requests),
        watchdog: run_watchdog_leg(scale, requests),
        salvage: run_salvage_sweep(scale),
    }
}

impl ChaosReport {
    /// Every gate breach, empty when the matrix is green: silent wrong
    /// data anywhere, a broken accounting identity, a storm that never
    /// fired, qd variance, a watchdog identity breach, or a salvage
    /// violation.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in &self.cells {
            let tag = format!(
                "cell rate={} chip_faults={} power_cut={}",
                c.rate, c.chip_faults, c.power_cut
            );
            if c.silent_wrong_data > 0 {
                out.push(format!("{tag}: {} silent wrong-data events", c.silent_wrong_data));
            }
            if !c.accounting_ok {
                out.push(format!(
                    "{tag}: accounting identity broken (injected {} detected {} oob {} \
                     rederived {} unrecoverable {})",
                    c.injected, c.detected, c.from_oob, c.rederived, c.unrecoverable
                ));
            }
            if c.injected == 0 {
                out.push(format!("{tag}: storm never fired"));
            }
        }
        if !self.qd_invariant {
            out.push("qd1 and qd8 storm runs diverged".into());
        }
        let w = &self.watchdog;
        if !w.reconciles {
            out.push(format!(
                "watchdog identity broken: stalls {} aborts {} retries {} failures {} timed_out {}",
                w.stalls_injected, w.aborts, w.retries, w.deadline_failures, w.timed_out_results
            ));
        }
        if !w.qd_invariant {
            out.push("watchdog verdicts varied with queue depth".into());
        }
        if !w.timing_neutral {
            out.push("zero-rate watchdog was not timing-neutral".into());
        }
        if w.deadline_failures == 0 {
            out.push("watchdog leg injected no deadline failures".into());
        }
        if self.salvage.violations > 0 {
            out.push(format!(
                "salvage sweep: {} of {} flips restored silently wrong",
                self.salvage.violations, self.salvage.flips
            ));
        }
        out
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("== Chaos: metadata-corruption storm matrix ==\n");
        s.push_str(&format!("scale={}, requests/cell={}\n", self.scale_name, self.requests));
        s.push_str(
            " rate | chip | cut | inject | detect |  oob | rederive | unrec | pruned | silent\n",
        );
        s.push_str(
            "------+------+-----+--------+--------+------+----------+-------+--------+-------\n",
        );
        for c in &self.cells {
            s.push_str(&format!(
                "{:>5.2} | {:>4} | {:>3} | {:>6} | {:>6} | {:>4} | {:>8} | {:>5} | {:>6} | {:>6}\n",
                c.rate,
                if c.chip_faults { "yes" } else { "no" },
                if c.power_cut { "yes" } else { "no" },
                c.injected,
                c.detected,
                c.from_oob,
                c.rederived,
                c.unrecoverable,
                c.resurrections_pruned,
                c.silent_wrong_data,
            ));
        }
        let w = &self.watchdog;
        s.push_str(&format!(
            "qd-invariance: {}\nwatchdog: stalls={} aborts={} retries={} failures={} \
             timed_out={} reconciles={} qd_invariant={} timing_neutral={}\n",
            if self.qd_invariant { "PASS" } else { "FAIL" },
            w.stalls_injected,
            w.aborts,
            w.retries,
            w.deadline_failures,
            w.timed_out_results,
            w.reconciles,
            w.qd_invariant,
            w.timing_neutral,
        ));
        s.push_str(&format!(
            "salvage sweep: {} flips -> {} typed errors, {} salvages, {} violations\n",
            self.salvage.flips,
            self.salvage.typed_errors,
            self.salvage.salvages,
            self.salvage.violations,
        ));
        let v = self.violations();
        s.push_str(&format!(
            "gate: {}\n",
            if v.is_empty() {
                "PASS".to_string()
            } else {
                format!("FAIL ({} violations)", v.len())
            }
        ));
        s
    }

    /// Machine-readable JSON (`BENCH_chaos.json`).
    pub fn to_json(&self) -> String {
        let b = |v: bool| if v { "true" } else { "false" };
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"experiment\": \"chaos\",\n");
        s.push_str(&format!("  \"scale\": \"{}\",\n", self.scale_name));
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"qd_invariant\": {},\n", b(self.qd_invariant)));
        s.push_str(&format!("  \"gate_passes\": {},\n", b(self.violations().is_empty())));
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"rate\": {},\n", c.rate));
            s.push_str(&format!("      \"chip_faults\": {},\n", b(c.chip_faults)));
            s.push_str(&format!("      \"power_cut\": {},\n", b(c.power_cut)));
            s.push_str(&format!("      \"injected\": {},\n", c.injected));
            s.push_str(&format!("      \"detected\": {},\n", c.detected));
            s.push_str(&format!("      \"from_oob\": {},\n", c.from_oob));
            s.push_str(&format!("      \"rederived\": {},\n", c.rederived));
            s.push_str(&format!("      \"unrecoverable\": {},\n", c.unrecoverable));
            s.push_str(&format!("      \"resurrections_pruned\": {},\n", c.resurrections_pruned));
            s.push_str(&format!("      \"audit_divergences\": {},\n", c.audit_divergences));
            s.push_str(&format!("      \"silent_wrong_data\": {},\n", c.silent_wrong_data));
            s.push_str(&format!("      \"accounting_ok\": {}\n", b(c.accounting_ok)));
            s.push_str(if i + 1 < self.cells.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ],\n");
        let w = &self.watchdog;
        s.push_str("  \"watchdog\": {\n");
        s.push_str(&format!("    \"stalls_injected\": {},\n", w.stalls_injected));
        s.push_str(&format!("    \"aborts\": {},\n", w.aborts));
        s.push_str(&format!("    \"retries\": {},\n", w.retries));
        s.push_str(&format!("    \"deadline_failures\": {},\n", w.deadline_failures));
        s.push_str(&format!("    \"timed_out_results\": {},\n", w.timed_out_results));
        s.push_str(&format!("    \"reconciles\": {},\n", b(w.reconciles)));
        s.push_str(&format!("    \"qd_invariant\": {},\n", b(w.qd_invariant)));
        s.push_str(&format!("    \"timing_neutral\": {}\n", b(w.timing_neutral)));
        s.push_str("  },\n");
        s.push_str("  \"salvage\": {\n");
        s.push_str(&format!("    \"flips\": {},\n", self.salvage.flips));
        s.push_str(&format!("    \"typed_errors\": {},\n", self.salvage.typed_errors));
        s.push_str(&format!("    \"salvages\": {},\n", self.salvage.salvages));
        s.push_str(&format!("    \"violations\": {}\n", self.salvage.violations));
        s.push_str("  }\n");
        s.push_str("}\n");
        s
    }
}

/// Experiment entry point: render the matrix.
pub fn chaos(scale: &Scale, scale_name: &str) -> String {
    run(scale, scale_name).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_is_green() {
        let report = run(&Scale::smoke(), "smoke");
        let v = report.violations();
        assert!(v.is_empty(), "chaos gate violated:\n{}\n{}", v.join("\n"), report.render());
        assert!(report.cells.iter().all(|c| c.injected > 0), "every cell fired");
        assert_eq!(report.cells.len(), RATES.len() * 4);
    }

    #[test]
    fn json_is_well_formed() {
        let report = run(&Scale::smoke(), "smoke");
        let j = report.to_json();
        assert!(j.contains("\"experiment\": \"chaos\""));
        assert!(j.contains("\"silent_wrong_data\""));
        assert!(j.contains("\"gate_passes\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}

//! Chip-level reliability experiments: Figure 6 (OSR damage), Figure 10
//! (open-interval effect) and Figure 11(b) (RBER vs SSL center Vth).

use crate::scale::Scale;
use evanesco_core::bap::normalized_rber_vs_center_vth;
use evanesco_nand::cell::{CellTech, PageType};
use evanesco_nand::ecc::EccModel;
use evanesco_nand::math::percentile;
use evanesco_nand::noise::{adjusted_states, Condition, OpenInterval};
use evanesco_nand::osr::{osr_experiment, OsrParams};
use evanesco_nand::rber::page_rber;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write;

/// Box-plot style summary of a set of normalized RBER samples.
fn box_stats(samples: &[f64]) -> String {
    format!(
        "min {:5.2}  p25 {:5.2}  med {:5.2}  p75 {:5.2}  max {:5.2}  >limit {:4.1}%",
        percentile(samples, 0.0),
        percentile(samples, 25.0),
        percentile(samples, 50.0),
        percentile(samples, 75.0),
        percentile(samples, 100.0),
        100.0 * samples.iter().filter(|&&r| r > 1.0).count() as f64 / samples.len() as f64
    )
}

/// Figure 6: normalized RBER of MSB pages under one-shot reprogramming,
/// for MLC (3 K P/E, sanitize LSB) and TLC (1 K P/E, sanitize LSB + CSB):
/// initial / right after OSR / after 1-year retention.
pub fn fig6(scale: &Scale) -> String {
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let ecc = EccModel::default();
    let params = OsrParams::default();
    let mut out = String::new();
    writeln!(out, "== Figure 6: RBER of MSB pages under OSR (normalized to ECC limit) ==").unwrap();
    let cases: [(&str, CellTech, u32, &[PageType]); 2] = [
        ("MLC, 3K P/E, sanitize LSB", CellTech::Mlc, 3000, &[PageType::Lsb]),
        ("TLC, 1K P/E, sanitize LSB & CSB", CellTech::Tlc, 1000, &[PageType::Lsb, PageType::Csb]),
    ];
    for (label, tech, pe, sanitize) in cases {
        writeln!(out, "\n[{label}]").unwrap();
        let conditions: [(&str, Condition, bool); 3] = [
            ("initial (no OSR)", Condition::cycled(pe), false),
            ("after OSR", Condition::cycled(pe), true),
            ("OSR + 1y retention", Condition::one_year_retention(pe), true),
        ];
        for (cname, cond, do_osr) in conditions {
            let samples: Vec<f64> = (0..scale.wordline_trials)
                .map(|_| {
                    let raw = if do_osr {
                        osr_experiment(&mut rng, tech, cond, sanitize, PageType::Msb, &params)
                    } else {
                        osr_experiment(&mut rng, tech, cond, &[], PageType::Msb, &params)
                    };
                    ecc.normalize(raw)
                })
                .collect();
            writeln!(out, "  {:<20} {}", cname, box_stats(&samples)).unwrap();
        }
    }
    writeln!(
        out,
        "\npaper anchors: MLC ~7.4% of MSB pages exceed the limit right after OSR;\n\
         TLC MSB pages all exceed the limit; retention pushes both far beyond it."
    )
    .unwrap();
    out
}

/// Figure 10: normalized RBER vs. open-interval length, three conditions.
pub fn fig10() -> String {
    let ecc = EccModel::default();
    let mut out = String::new();
    writeln!(out, "== Figure 10: RBER vs open interval length ==").unwrap();
    let conds = [
        ("no P/E cycling", Condition::fresh()),
        ("after P/E cycling", Condition::cycled(1000)),
        ("after P/E + retention", Condition::one_year_retention(1000)),
    ];
    writeln!(
        out,
        "{:<24} {}",
        "condition",
        OpenInterval::ALL.iter().map(|c| format!("{:>11}", c.to_string())).collect::<String>()
    )
    .unwrap();
    for (name, cond) in conds {
        let base = ecc.normalize(page_rber(&adjusted_states(CellTech::Tlc, cond), PageType::Msb));
        let row: String = OpenInterval::ALL
            .iter()
            .map(|c| format!("{:>11.3}", base * c.rber_factor(cond)))
            .collect();
        writeln!(out, "{:<24} {}", name, row).unwrap();
    }
    writeln!(out, "\n(factors only, normalized to zero interval)").unwrap();
    let cond = Condition::one_year_retention(1000);
    let row: String =
        OpenInterval::ALL.iter().map(|c| format!("{:>11.3}", c.rber_factor(cond))).collect();
    writeln!(out, "{:<24} {}", "worst-case factor", row).unwrap();
    writeln!(out, "paper anchor: ~30% RBER increase at the longest interval -> erase lazily.")
        .unwrap();
    out
}

/// Figure 11(b): normalized RBER vs. SSL center Vth at 0 K and 1 K P/E.
pub fn fig11() -> String {
    let ecc = EccModel::default();
    let mut out = String::new();
    writeln!(out, "== Figure 11(b): RBER vs center Vth of SSL ==").unwrap();
    let baselines = [
        ("0K P/E", page_rber(&adjusted_states(CellTech::Tlc, Condition::fresh()), PageType::Msb)),
        (
            "1K P/E",
            page_rber(&adjusted_states(CellTech::Tlc, Condition::cycled(1000)), PageType::Msb),
        ),
    ];
    write!(out, "{:<10}", "Vth[V]").unwrap();
    for (name, _) in &baselines {
        write!(out, "{:>12}", name).unwrap();
    }
    writeln!(out).unwrap();
    let mut v = 1.0;
    while v <= 5.0 + 1e-9 {
        write!(out, "{:<10.2}", v).unwrap();
        for &(_, base) in &baselines {
            let r = normalized_rber_vs_center_vth(v, base, &ecc);
            write!(out, "{:>12.3}", r.min(99.0)).unwrap();
        }
        writeln!(out).unwrap();
        v += 0.25;
    }
    writeln!(out, "ECC limit = 1.0; paper anchor: reads fail once center Vth exceeds ~3V.")
        .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_holds() {
        let s = fig6(&Scale::smoke());
        assert!(s.contains("MLC"));
        assert!(s.contains("TLC"));
        // TLC after OSR: all WLs above the limit -> the ">limit" column of
        // that row is 100%.
        let tlc_osr_line = s
            .lines()
            .skip_while(|l| !l.contains("TLC"))
            .find(|l| l.trim_start().starts_with("after OSR"))
            .expect("TLC after-OSR row");
        assert!(tlc_osr_line.contains("100.0%"), "line: {tlc_osr_line}");
    }

    #[test]
    fn fig10_monotone_rows() {
        let s = fig10();
        assert!(s.contains("very long"));
        assert!(s.contains("worst-case factor"));
    }

    #[test]
    fn fig11_crosses_limit_near_3v() {
        let s = fig11();
        // Extract the 1K P/E column at 2.50 and 3.25.
        let val = |prefix: &str| -> f64 {
            let line = s.lines().find(|l| l.starts_with(prefix)).expect("row");
            line.split_whitespace().nth(2).unwrap().parse().unwrap()
        };
        assert!(val("2.50") < 1.0);
        assert!(val("3.25") > 1.0);
    }
}

//! Design-space exploration experiments: Figure 9 (pLock) and Figure 12
//! (bLock).

use evanesco_core::calibration::{block_initial_center_vth, DesignPoint};
use evanesco_core::dse::{
    explore_block, explore_plock, flag_cells_without_errors, ssl_center_vth_series, Region,
};
use std::fmt::Write;

const RETENTION_DAYS: [f64; 4] = [10.0, 100.0, 1000.0, 10_000.0];

fn region_str(r: Region) -> &'static str {
    match r {
        Region::RegionI => "Region-I",
        Region::RegionII => "Region-II",
        Region::Candidate => "candidate",
    }
}

/// Figure 9: pLock design-space exploration with `k = 9` flag cells.
pub fn fig9() -> String {
    let report = explore_plock(9);
    let mut out = String::new();
    writeln!(out, "== Figure 9: design space exploration for pLock ==").unwrap();
    writeln!(
        out,
        "{:<10} {:>6} {:>14} {:>14} {:<10} {:<6} {:>9}",
        "point", "t[us]", "dataRBERx", "flagSuccess", "class", "label", "5yr-ok"
    )
    .unwrap();
    for e in &report.evals {
        writeln!(
            out,
            "{:<10} {:>6} {:>14.3} {:>14.4} {:<10} {:<6} {:>9}",
            format!("Vp{}", e.point.v_index),
            e.point.t_us,
            e.step1_metric,
            e.step2_metric.unwrap_or(0.0),
            region_str(e.region),
            e.label.unwrap_or("-"),
            if e.region == Region::Candidate {
                if e.retention_ok {
                    "yes"
                } else {
                    "no"
                }
            } else {
                "-"
            }
        )
        .unwrap();
    }
    writeln!(out, "\nFigure 9(d): flag cells without errors (of 9) vs retention days").unwrap();
    write!(out, "{:<8}", "label").unwrap();
    for d in RETENTION_DAYS {
        write!(out, "{:>10}", format!("{d:.0}d")).unwrap();
    }
    writeln!(out).unwrap();
    for e in report.candidates() {
        let series = flag_cells_without_errors(e.point, &RETENTION_DAYS, 9);
        write!(out, "{:<8}", e.label.unwrap()).unwrap();
        for v in series {
            write!(out, "{:>10.2}", v).unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(
        out,
        "\nselected: {} = (Vp{}, {}us) with k = 9   [paper: (ii) = (Vp4, 100us), k = 9]",
        report.selected_label, report.selected.v_index, report.selected.t_us
    )
    .unwrap();
    out
}

/// Figure 12: bLock design-space exploration.
pub fn fig12() -> String {
    let report = explore_block();
    let mut out = String::new();
    writeln!(out, "== Figure 12: design space exploration for bLock ==").unwrap();
    writeln!(
        out,
        "{:<10} {:>6} {:>16} {:<10} {:<6} {:>9}",
        "point", "t[us]", "initCenterVth", "class", "label", "5yr-ok"
    )
    .unwrap();
    for e in &report.evals {
        writeln!(
            out,
            "{:<10} {:>6} {:>16.2} {:<10} {:<6} {:>9}",
            format!("Vb{}", e.point.v_index),
            e.point.t_us,
            block_initial_center_vth(e.point),
            region_str(e.region),
            e.label.unwrap_or("-"),
            if e.region == Region::Candidate {
                if e.retention_ok {
                    "yes"
                } else {
                    "no"
                }
            } else {
                "-"
            }
        )
        .unwrap();
    }
    writeln!(out, "\nFigure 12(b): SSL center Vth [V] vs retention days (kill threshold 3.0V)")
        .unwrap();
    write!(out, "{:<8}", "label").unwrap();
    for d in RETENTION_DAYS {
        write!(out, "{:>10}", format!("{d:.0}d")).unwrap();
    }
    writeln!(out).unwrap();
    for e in report.candidates() {
        let series = ssl_center_vth_series(e.point, &RETENTION_DAYS);
        write!(out, "{:<8}", e.label.unwrap()).unwrap();
        for v in series {
            write!(out, "{:>10.2}", v).unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(
        out,
        "\nselected: {} = (Vb{}, {}us)   [paper: (ii) = (Vb6, 300us)]",
        report.selected_label, report.selected.v_index, report.selected.t_us
    )
    .unwrap();
    out
}

/// Convenience accessor for the selected design points, used by examples.
pub fn selected_points() -> (DesignPoint, DesignPoint) {
    (explore_plock(9).selected, explore_block().selected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_reports_paper_selection() {
        let s = fig9();
        assert!(s.contains("selected: (ii) = (Vp4, 100us)"));
        assert!(s.contains("Region-I"));
        assert!(s.contains("Region-II"));
    }

    #[test]
    fn fig12_reports_paper_selection() {
        let s = fig12();
        assert!(s.contains("selected: (ii) = (Vb6, 300us)"));
        // The strongest combination stays above 4V at the 5-year horizon
        // (between the 1000d and 10000d samples) and above 3V at 10000 days.
        let line = s.lines().find(|l| l.starts_with("(i) ")).expect("(i) row");
        let cols: Vec<f64> = line.split_whitespace().skip(1).map(|c| c.parse().unwrap()).collect();
        assert!(cols[2] > 4.0, "1000-day center vth {}", cols[2]);
        assert!(cols[3] > 3.0, "10000-day center vth {}", cols[3]);
    }

    #[test]
    fn selected_points_match_reports() {
        let (p, b) = selected_points();
        assert_eq!((p.v_index, p.t_us), (4, 100));
        assert_eq!((b.v_index, b.t_us), (6, 300));
    }
}

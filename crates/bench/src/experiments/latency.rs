//! Secure-delete latency vs file size — the paper's §5.4 motivating
//! arithmetic measured end-to-end:
//!
//! > "if a user wants to securely delete a 1-GiB file from a flash-based
//! > storage system with 16-KiB page size, 65,536 consecutive pLock
//! > commands are needed, which can introduce significant delay […] a
//! > single bLock command can sanitize all the pages in a block at once."

use evanesco_ftl::SanitizePolicy;
use evanesco_nand::timing::Nanos;
use evanesco_ssd::{Emulator, SsdConfig};
use std::fmt::Write;

fn delete_cost(policy: SanitizePolicy, npages: u64) -> (Nanos, u64, u64) {
    // Enough capacity for the largest file: 65,536 pages needs ≥114 blocks.
    let mut cfg = SsdConfig::scaled(24);
    cfg.track_tags = false;
    let mut ssd = Emulator::new(cfg, policy);
    assert!(npages <= ssd.logical_pages(), "file larger than the device");
    ssd.write(0, npages, true);
    let before = ssd.result();
    ssd.trim(0, npages);
    let after = ssd.result();
    let d = after.since(&before);
    (d.sim_time, d.plocks, d.blocks_locked)
}

/// Delete-latency table (secSSD vs secSSD_nobLock) over file sizes.
pub fn delete_latency() -> String {
    let mut out = String::new();
    writeln!(out, "== Secure-delete latency vs file size (paper §5.4 arithmetic) ==").unwrap();
    writeln!(
        out,
        "{:>10} {:>9} | {:>12} {:>8} {:>8} | {:>12} {:>8}",
        "file", "pages", "nobLock time", "pLocks", "", "secSSD time", "locks"
    )
    .unwrap();
    for npages in [64u64, 512, 4096, 65_536] {
        let mib = npages * 16 / 1024;
        let (t_nob, p_nob, _) = delete_cost(SanitizePolicy::evanesco_no_block(), npages);
        let (t_sec, p_sec, b_sec) = delete_cost(SanitizePolicy::evanesco(), npages);
        writeln!(
            out,
            "{:>9}M {:>9} | {:>12} {:>8} {:>8} | {:>12} {:>8}",
            mib,
            npages,
            t_nob.to_string(),
            p_nob,
            "",
            t_sec.to_string(),
            p_sec + b_sec
        )
        .unwrap();
    }
    writeln!(
        out,
        "\npaper arithmetic for a 1-GiB file: 65,536 pLocks x 100us = 6.55s of lock\n\
         time, vs ~114 bLocks x 300us = 34ms. The measured deletes include the\n\
         trim bookkeeping and chip parallelism, so secSSD's wall time is the\n\
         lock time divided across 8 chips. Small files fall back to pLocks:\n\
         their pages sit in still-open blocks, which must not be bLocked."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gib_delete_matches_paper_arithmetic() {
        let (t_nob, plocks, _) = delete_cost(SanitizePolicy::evanesco_no_block(), 65_536);
        assert_eq!(plocks, 65_536, "one pLock per page");
        // 65,536 pLocks x 100us spread over 8 chips ≈ 0.82s of per-chip time.
        let secs = t_nob.as_secs_f64();
        assert!((0.5..=8.0).contains(&secs), "nobLock 1-GiB delete took {secs}s");

        let (t_sec, p_sec, b_sec) = delete_cost(SanitizePolicy::evanesco(), 65_536);
        assert!(b_sec >= 100, "a 1-GiB delete should be mostly bLocks: {b_sec}");
        assert!(p_sec < 2_000, "few residual pLocks: {p_sec}");
        // Two orders of magnitude faster, as the paper's arithmetic implies.
        assert!(
            t_sec.as_secs_f64() * 20.0 < t_nob.as_secs_f64(),
            "secSSD {t_sec} vs nobLock {t_nob}"
        );
    }

    #[test]
    fn table_renders() {
        let s = delete_latency();
        assert!(s.contains("65536"));
        assert!(s.contains("1-GiB"));
    }
}

//! Regenerates the Evanesco paper's tables and figures.
//!
//! ```text
//! experiments [--quick|--smoke|--scale NAME] [--seed N] <name>... | all
//! ```
//!
//! Names: table1 table2 fig2 fig4 fig6 fig9 fig10 fig11 fig12 fig14a
//! fig14b fig14c headline overhead ablation-k ablation-blocktrig
//! ablation-lazy scheduler. Default scale is `full` (use `--release`!).
//!
//! Four names carry regression gates (and fail the process with exit 1
//! when breached):
//!
//! * `scheduler` — writes `BENCH_scheduler.json` and fails when the
//!   queue-depth-8 speedup over the serialized baseline falls under the
//!   gate;
//! * `trace` — writes the chrome://tracing export to
//!   `TRACE_scheduler.json` and fails if the export drifts from the
//!   checked-in schema;
//! * `report` — writes the consolidated observability report to
//!   `BENCH_report.json` and fails on a timing-neutrality violation,
//!   live-vs-offline attribution disagreement, broken Table-1 ordering,
//!   or numeric drift against a checked-in same-scale baseline;
//! * `campaign` — writes the checkpointed aging-campaign report to
//!   `BENCH_campaign.json` and fails if any scenario's chained-through-
//!   checkpoints run diverges from its uninterrupted control run;
//! * `chaos` — writes the metadata-corruption storm matrix to
//!   `BENCH_chaos.json` and fails on any silent wrong-data event
//!   (differential vs an uncorrupted twin), a broken injected ↔
//!   detected/repaired accounting identity, queue-depth variance, a
//!   watchdog identity breach, or a salvage-sweep violation;
//! * `fleet` — writes the multi-tenant noisy-neighbor matrix to
//!   `BENCH_fleet.json` and fails when per-device digests differ across
//!   shard counts {1, 2, 4} or a rerun (determinism breach), or when
//!   QoS shaping fails to cut the worst victim p99 under the
//!   sanitization storm by the gate factor;
//! * `anatomy` — writes the per-request latency-anatomy report to
//!   `BENCH_anatomy.json` and fails when any request's stage sum
//!   differs from its end-to-end latency at queue depth 1, 8, or 32
//!   (tiling breach), when enabling the layer changes any simulated
//!   result (timing-neutrality breach), or when the victims' p99-tail
//!   interference under the sanitization storm is not majority-blamed
//!   on sanitization locks.
//!
//! The campaign also has a per-process segment mode for real
//! stop/restart chains (what the CI `campaign-gate` job byte-diffs):
//!
//! ```text
//! experiments --smoke campaign --segments 2 --segment 0 --checkpoint seg0.ckpt
//! experiments --smoke campaign --segments 2 --segment 1 \
//!     --resume-from seg0.ckpt --checkpoint seg1.ckpt
//! experiments --smoke campaign --segments 2 --baseline --checkpoint base.ckpt
//! cmp seg1.ckpt base.ckpt
//! ```
//!
//! Unknown experiment names, a missing `--resume-from` file, and
//! inconsistent segment flags are all rejected up front (exit 1) before
//! any experiment runs.

use evanesco_bench::experiments::{
    anatomy, campaign, chaos, fleet, hostperf, report, scheduler, tracing,
};
use evanesco_bench::{is_experiment_name, run_experiment, Scale, EXPERIMENT_NAMES};
use evanesco_ssd::{read_checkpoint, write_checkpoint, CheckpointError};
use std::path::PathBuf;

/// Exit code for a `--resume-from` checkpoint that exists but fails to
/// decode (corrupt or truncated) — distinct from the generic exit 1 so
/// CI and operators can tell "bad file" from "bad invocation".
const EXIT_CORRUPT_CHECKPOINT: i32 = 3;

/// Flags selecting the campaign's per-process segment mode.
#[derive(Default)]
struct SegmentMode {
    segments: Option<usize>,
    segment: Option<usize>,
    baseline: bool,
    checkpoint: Option<PathBuf>,
    resume_from: Option<PathBuf>,
    scenario: Option<String>,
}

fn main() {
    let mut scale = Scale::full();
    let mut scale_name = "full".to_string();
    let mut names: Vec<String> = Vec::new();
    let mut seg = SegmentMode::default();
    let mut reps: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                scale = Scale::quick();
                scale_name = "quick".to_string();
            }
            "--smoke" => {
                scale = Scale::smoke();
                scale_name = "smoke".to_string();
            }
            "--scale" => {
                let v = args.next().expect("--scale needs a value (full|quick|smoke)");
                scale = match v.as_str() {
                    "full" => Scale::full(),
                    "quick" => Scale::quick(),
                    "smoke" => Scale::smoke(),
                    other => panic!("unknown scale '{other}' (full|quick|smoke)"),
                };
                scale_name = v;
            }
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                scale.seed = v.parse().expect("--seed needs an integer");
            }
            "--segments" => {
                let v = args.next().expect("--segments needs a value");
                seg.segments = Some(v.parse().expect("--segments needs an integer"));
            }
            "--segment" => {
                let v = args.next().expect("--segment needs a value");
                seg.segment = Some(v.parse().expect("--segment needs an integer"));
            }
            "--baseline" => seg.baseline = true,
            "--checkpoint" => {
                seg.checkpoint = Some(args.next().expect("--checkpoint needs a path").into());
            }
            "--resume-from" => {
                seg.resume_from = Some(args.next().expect("--resume-from needs a path").into());
            }
            "--scenario" => {
                seg.scenario = Some(args.next().expect("--scenario needs a name"));
            }
            "--reps" => {
                let v = args.next().expect("--reps needs a value");
                reps = Some(v.parse().expect("--reps needs an integer"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--quick|--smoke|--scale NAME] [--seed N] <name>...|all"
                );
                eprintln!("names: {}", EXPERIMENT_NAMES.join(" "));
                eprintln!(
                    "gate-bearing (write an artifact and exit 1 on regression): \
                     scheduler (BENCH_scheduler.json), trace (TRACE_scheduler.json), \
                     report (BENCH_report.json), campaign (BENCH_campaign.json; fails \
                     when a checkpoint-chained run diverges from its uninterrupted twin), \
                     hostperf (BENCH_hostperf.json; wall-clock throughput, fails under \
                     the machine-normalized speedup-vs-seed gate; [--reps N]), \
                     chaos (BENCH_chaos.json; corruption storm matrix, fails on any \
                     silent wrong-data event or broken accounting identity), \
                     fleet (BENCH_fleet.json; multi-tenant noisy-neighbor matrix, fails \
                     on a shard/rerun determinism breach or a QoS p99 inversion), \
                     anatomy (BENCH_anatomy.json; per-request stage decomposition, fails \
                     on a stage-tiling breach at qd 1/8/32, a timing-neutrality breach, \
                     or when the victims' p99-tail interference is not \
                     sanitization-dominated under the storm)"
                );
                eprintln!(
                    "campaign segment mode (process-per-segment): campaign \
                     [--segments N] (--segment K [--resume-from CKPT] | --baseline) \
                     --checkpoint OUT [--scenario {}]",
                    campaign::scenarios().map(|s| s.name).join("|")
                );
                return;
            }
            other => {
                // Reject unknown flags up front (exit 1): a typo'd flag
                // must never be silently swallowed as an experiment name.
                if other.starts_with('-') {
                    eprintln!("unknown flag '{other}' (see --help)");
                    std::process::exit(1);
                }
                names.push(other.to_string());
            }
        }
    }
    // Reject bad segment-mode flag combinations and a dangling
    // --resume-from path before anything runs.
    if let Some(p) = &seg.resume_from {
        if !p.exists() {
            eprintln!("--resume-from {}: no such checkpoint file", p.display());
            std::process::exit(1);
        }
    }
    if seg.segment.is_some() || seg.baseline {
        if let Err(msg) = run_campaign_segment(&scale, &seg) {
            eprintln!("campaign segment mode: {msg}");
            std::process::exit(1);
        }
        return;
    }
    // Reject typos before running anything: a bad name at the end of a
    // long list must not cost the hours of runs before it.
    let unknown: Vec<&String> =
        names.iter().filter(|n| *n != "all" && !is_experiment_name(n)).collect();
    if !unknown.is_empty() {
        for n in unknown {
            eprintln!("unknown experiment '{n}'");
        }
        eprintln!("known: {}", EXPERIMENT_NAMES.join(" "));
        std::process::exit(1);
    }
    if names.is_empty() || names.iter().any(|n| n == "all") {
        names = EXPERIMENT_NAMES.iter().map(|s| s.to_string()).collect();
    }
    let mut gate_failed = false;
    for name in names {
        if name == "scheduler" {
            let report = scheduler::run(&scale, &scale_name);
            println!("{}", report.render());
            std::fs::write("BENCH_scheduler.json", report.to_json())
                .expect("write BENCH_scheduler.json");
            println!("wrote BENCH_scheduler.json");
            if !report.gate_passes() {
                eprintln!(
                    "scheduler gate FAILED: qd {} speedup {:.2}x < {:.1}x",
                    scheduler::GATE_QD,
                    report.gate_speedup(),
                    scheduler::GATE_MIN_SPEEDUP,
                );
                gate_failed = true;
            }
        } else if name == "trace" {
            let report = tracing::run(&scale, &scale_name);
            println!("{}", report.render());
            std::fs::write("TRACE_scheduler.json", &report.chrome_json)
                .expect("write TRACE_scheduler.json");
            println!("wrote TRACE_scheduler.json (open in chrome://tracing or Perfetto)");
            if let Err(e) = report.validate() {
                eprintln!("trace schema DRIFT: {e}");
                gate_failed = true;
            }
        } else if name == "report" {
            let bundle = report::run(&scale, &scale_name);
            println!("{}", bundle.render());
            let mut violations = bundle.self_check();
            // Gate against the checked-in baseline *before* overwriting it.
            match std::fs::read_to_string("BENCH_report.json") {
                Ok(baseline) => violations.extend(bundle.drift_against(&baseline)),
                Err(_) => println!("no BENCH_report.json baseline found; drift gate skipped"),
            }
            std::fs::write("BENCH_report.json", bundle.to_json()).expect("write BENCH_report.json");
            println!("wrote BENCH_report.json");
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!("report gate FAILED: {v}");
                }
                gate_failed = true;
            }
        } else if name == "hostperf" {
            let reps = reps.unwrap_or(if scale_name == "smoke" { 3 } else { 2 });
            let bundle = hostperf::run(&scale, &scale_name, reps);
            println!("{}", bundle.render());
            let mut violations = Vec::new();
            // Compare against the checked-in baseline *before* overwriting
            // it (runner-independent: the check is on the speedup ratio).
            match std::fs::read_to_string("BENCH_hostperf.json") {
                Ok(baseline) => violations.extend(bundle.drift_against(&baseline)),
                Err(_) => println!("no BENCH_hostperf.json baseline found; drift gate skipped"),
            }
            std::fs::write("BENCH_hostperf.json", bundle.to_json())
                .expect("write BENCH_hostperf.json");
            println!("wrote BENCH_hostperf.json");
            if !bundle.gate_passes() {
                eprintln!(
                    "hostperf gate FAILED: qd{} speedup-vs-seed {:.2}x < {:.1}x",
                    hostperf::GATE_QD,
                    bundle.gate_speedup(),
                    hostperf::GATE_MIN_SPEEDUP,
                );
                gate_failed = true;
            }
            for v in &violations {
                eprintln!("hostperf gate FAILED: {v}");
                gate_failed = true;
            }
        } else if name == "chaos" {
            let bundle = chaos::run(&scale, &scale_name);
            println!("{}", bundle.render());
            std::fs::write("BENCH_chaos.json", bundle.to_json()).expect("write BENCH_chaos.json");
            println!("wrote BENCH_chaos.json");
            for v in bundle.violations() {
                eprintln!("chaos gate FAILED: {v}");
                gate_failed = true;
            }
        } else if name == "fleet" {
            let bench = fleet::run(&scale, &scale_name);
            println!("{}", bench.render());
            std::fs::write("BENCH_fleet.json", bench.to_json()).expect("write BENCH_fleet.json");
            println!("wrote BENCH_fleet.json");
            for v in bench.violations() {
                eprintln!("fleet gate FAILED: {v}");
                gate_failed = true;
            }
        } else if name == "anatomy" {
            let bench = anatomy::run(&scale, &scale_name);
            println!("{}", bench.render());
            std::fs::write("BENCH_anatomy.json", bench.to_json())
                .expect("write BENCH_anatomy.json");
            println!("wrote BENCH_anatomy.json");
            for v in bench.violations() {
                eprintln!("anatomy gate FAILED: {v}");
                gate_failed = true;
            }
        } else if name == "campaign" {
            let bundle = campaign::run(&scale, &scale_name);
            println!("{}", bundle.render());
            std::fs::write("BENCH_campaign.json", bundle.to_json())
                .expect("write BENCH_campaign.json");
            println!("wrote BENCH_campaign.json");
            for v in bundle.violations() {
                eprintln!("campaign gate FAILED: {v}");
                gate_failed = true;
            }
        } else {
            println!("{}", run_experiment(&name, &scale));
        }
        println!();
    }
    if gate_failed {
        std::process::exit(1);
    }
}

/// One process of a stop/restart campaign chain: runs segment K (or the
/// whole uninterrupted baseline) and writes the resulting checkpoint.
/// Every process regenerates the same workload trace from the scale, so
/// only device state travels between processes — inside the checkpoint.
fn run_campaign_segment(scale: &Scale, seg: &SegmentMode) -> Result<(), String> {
    let segments = seg.segments.unwrap_or(2);
    if segments == 0 {
        return Err("--segments must be at least 1".into());
    }
    let scenario = match &seg.scenario {
        None => campaign::default_scenario(),
        Some(name) => campaign::scenario_by_name(name).ok_or_else(|| {
            format!(
                "unknown scenario '{name}' (known: {})",
                campaign::scenarios().map(|s| s.name).join(" ")
            )
        })?,
    };
    let out = seg.checkpoint.as_ref().ok_or("--checkpoint PATH is required")?;

    if seg.baseline {
        if seg.segment.is_some() {
            return Err("--baseline and --segment are mutually exclusive".into());
        }
        let (bytes, _, digests) = campaign::run_uninterrupted(scale, &scenario, segments);
        std::fs::write(out, &bytes).map_err(|e| format!("write {}: {e}", out.display()))?;
        let d = digests.last().expect("segments >= 1");
        println!(
            "baseline ({}, {} segments): {} host ops, {} erases, mode {}; wrote {}",
            scenario.name,
            segments,
            d.host_ops,
            d.erases,
            d.mode,
            out.display()
        );
        return Ok(());
    }

    let k = seg.segment.expect("checked by caller");
    if k >= segments {
        return Err(format!("--segment {k} out of range for --segments {segments}"));
    }
    let mut ssd = match (&seg.resume_from, k) {
        (None, 0) => campaign::fresh_device(scale, &scenario),
        (None, _) => return Err(format!("--segment {k} needs --resume-from")),
        (Some(_), 0) => return Err("--segment 0 starts fresh; drop --resume-from".into()),
        (Some(p), _) => match read_checkpoint(p) {
            Ok(ssd) => ssd,
            Err(CheckpointError::Snapshot(e)) => {
                // One line naming exactly what is damaged (the strict
                // decoder's error carries the failing section), then the
                // dedicated exit code for a corrupt/truncated checkpoint.
                let msg = e.to_string();
                let msg = msg.strip_prefix("corrupt checkpoint: ").unwrap_or(&msg);
                eprintln!("--resume-from {}: corrupt checkpoint: {msg}", p.display());
                std::process::exit(EXIT_CORRUPT_CHECKPOINT);
            }
            Err(e) => return Err(format!("{}: {e}", p.display())),
        },
    };
    let trace = campaign::build_trace(scale, ssd.logical_pages());
    campaign::run_segment(&mut ssd, &trace, &scenario, segments, k);
    write_checkpoint(&ssd, out).map_err(|e| format!("write {}: {e}", out.display()))?;
    let r = ssd.result();
    println!(
        "segment {k}/{segments} ({}): {} host ops, sim {} ns, {} erases, mode {:?}; wrote {}",
        scenario.name,
        r.host_ops,
        r.sim_time.0,
        r.erases,
        ssd.ftl().degraded(),
        out.display()
    );
    Ok(())
}

//! Regenerates the Evanesco paper's tables and figures.
//!
//! ```text
//! experiments [--quick|--smoke|--scale NAME] [--seed N] <name>... | all
//! ```
//!
//! Names: table1 table2 fig2 fig4 fig6 fig9 fig10 fig11 fig12 fig14a
//! fig14b fig14c headline overhead ablation-k ablation-blocktrig
//! ablation-lazy scheduler. Default scale is `full` (use `--release`!).
//!
//! Three names carry regression gates (and fail the process with exit 1
//! when breached):
//!
//! * `scheduler` — writes `BENCH_scheduler.json` and fails when the
//!   queue-depth-8 speedup over the serialized baseline falls under the
//!   gate;
//! * `trace` — writes the chrome://tracing export to
//!   `TRACE_scheduler.json` and fails if the export drifts from the
//!   checked-in schema;
//! * `report` — writes the consolidated observability report to
//!   `BENCH_report.json` and fails on a timing-neutrality violation,
//!   live-vs-offline attribution disagreement, broken Table-1 ordering,
//!   or numeric drift against a checked-in same-scale baseline.
//!
//! Unknown experiment names are rejected up front (exit 1) before any
//! experiment runs.

use evanesco_bench::experiments::{report, scheduler, tracing};
use evanesco_bench::{is_experiment_name, run_experiment, Scale, EXPERIMENT_NAMES};

fn main() {
    let mut scale = Scale::full();
    let mut scale_name = "full".to_string();
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                scale = Scale::quick();
                scale_name = "quick".to_string();
            }
            "--smoke" => {
                scale = Scale::smoke();
                scale_name = "smoke".to_string();
            }
            "--scale" => {
                let v = args.next().expect("--scale needs a value (full|quick|smoke)");
                scale = match v.as_str() {
                    "full" => Scale::full(),
                    "quick" => Scale::quick(),
                    "smoke" => Scale::smoke(),
                    other => panic!("unknown scale '{other}' (full|quick|smoke)"),
                };
                scale_name = v;
            }
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                scale.seed = v.parse().expect("--seed needs an integer");
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--quick|--smoke|--scale NAME] [--seed N] <name>...|all"
                );
                eprintln!("names: {}", EXPERIMENT_NAMES.join(" "));
                eprintln!(
                    "gate-bearing (write an artifact and exit 1 on regression): \
                     scheduler (BENCH_scheduler.json), trace (TRACE_scheduler.json), \
                     report (BENCH_report.json)"
                );
                return;
            }
            other => names.push(other.to_string()),
        }
    }
    // Reject typos before running anything: a bad name at the end of a
    // long list must not cost the hours of runs before it.
    let unknown: Vec<&String> =
        names.iter().filter(|n| *n != "all" && !is_experiment_name(n)).collect();
    if !unknown.is_empty() {
        for n in unknown {
            eprintln!("unknown experiment '{n}'");
        }
        eprintln!("known: {}", EXPERIMENT_NAMES.join(" "));
        std::process::exit(1);
    }
    if names.is_empty() || names.iter().any(|n| n == "all") {
        names = EXPERIMENT_NAMES.iter().map(|s| s.to_string()).collect();
    }
    let mut gate_failed = false;
    for name in names {
        if name == "scheduler" {
            let report = scheduler::run(&scale, &scale_name);
            println!("{}", report.render());
            std::fs::write("BENCH_scheduler.json", report.to_json())
                .expect("write BENCH_scheduler.json");
            println!("wrote BENCH_scheduler.json");
            if !report.gate_passes() {
                eprintln!(
                    "scheduler gate FAILED: qd {} speedup {:.2}x < {:.1}x",
                    scheduler::GATE_QD,
                    report.gate_speedup(),
                    scheduler::GATE_MIN_SPEEDUP,
                );
                gate_failed = true;
            }
        } else if name == "trace" {
            let report = tracing::run(&scale, &scale_name);
            println!("{}", report.render());
            std::fs::write("TRACE_scheduler.json", &report.chrome_json)
                .expect("write TRACE_scheduler.json");
            println!("wrote TRACE_scheduler.json (open in chrome://tracing or Perfetto)");
            if let Err(e) = report.validate() {
                eprintln!("trace schema DRIFT: {e}");
                gate_failed = true;
            }
        } else if name == "report" {
            let bundle = report::run(&scale, &scale_name);
            println!("{}", bundle.render());
            let mut violations = bundle.self_check();
            // Gate against the checked-in baseline *before* overwriting it.
            match std::fs::read_to_string("BENCH_report.json") {
                Ok(baseline) => violations.extend(bundle.drift_against(&baseline)),
                Err(_) => println!("no BENCH_report.json baseline found; drift gate skipped"),
            }
            std::fs::write("BENCH_report.json", bundle.to_json()).expect("write BENCH_report.json");
            println!("wrote BENCH_report.json");
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!("report gate FAILED: {v}");
                }
                gate_failed = true;
            }
        } else {
            println!("{}", run_experiment(&name, &scale));
        }
        println!();
    }
    if gate_failed {
        std::process::exit(1);
    }
}

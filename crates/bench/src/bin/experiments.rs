//! Regenerates the Evanesco paper's tables and figures.
//!
//! ```text
//! experiments [--quick|--smoke] [--seed N] <name>... | all
//! ```
//!
//! Names: table1 table2 fig2 fig4 fig6 fig9 fig10 fig11 fig12 fig14a
//! fig14b fig14c headline overhead ablation-k ablation-blocktrig
//! ablation-lazy. Default scale is `full` (use `--release`!).

use evanesco_bench::{run_experiment, Scale, EXPERIMENT_NAMES};

fn main() {
    let mut scale = Scale::full();
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = Scale::quick(),
            "--smoke" => scale = Scale::smoke(),
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                scale.seed = v.parse().expect("--seed needs an integer");
            }
            "--help" | "-h" => {
                eprintln!("usage: experiments [--quick|--smoke] [--seed N] <name>...|all");
                eprintln!("names: {}", EXPERIMENT_NAMES.join(" "));
                return;
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() || names.iter().any(|n| n == "all") {
        names = EXPERIMENT_NAMES.iter().map(|s| s.to_string()).collect();
    }
    for name in names {
        println!("{}", run_experiment(&name, &scale));
        println!();
    }
}

//! Experiment scale presets.
//!
//! The paper's testbed wrote 64 GiB against a 32-GiB emulated SSD and
//! characterized 3.7 M wordlines on real chips. The reproduction keeps the
//! paper's *block shape* (576 × 16-KiB pages) and channel topology but
//! scales capacity and Monte-Carlo trial counts so a full run finishes in
//! minutes; the reported metrics are ratios, which are stable under this
//! scaling (the block-shape-dependent effects — relocation cost per
//! sanitization, bLock batching — are preserved exactly).

use evanesco_ftl::FtlConfig;
use evanesco_nand::cell::CellTech;
use evanesco_nand::geometry::Geometry;
use evanesco_nand::timing::TimingSpec;
use evanesco_ssd::SsdConfig;

/// Size knobs for the experiment suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Blocks per chip for system-level runs (paper: 428).
    pub blocks_per_chip: u32,
    /// Measured write volume as a multiple of the logical capacity
    /// (paper: 64 GiB over 32 GiB = 2×).
    pub write_multiplier: f64,
    /// Wordlines simulated per condition in chip-level Monte-Carlo
    /// experiments.
    pub wordline_trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Use the miniature block shape (24-page blocks) instead of the
    /// paper's 576-page blocks — only for smoke tests.
    pub tiny_blocks: bool,
}

impl Scale {
    /// Full scale: paper block shape, 2× capacity written, 300 wordlines
    /// per condition. Minutes of runtime in release mode.
    pub fn full() -> Self {
        Scale {
            blocks_per_chip: 48,
            write_multiplier: 2.0,
            wordline_trials: 300,
            seed: 42,
            tiny_blocks: false,
        }
    }

    /// Quick scale for interactive iteration: paper block shape, smaller
    /// capacity and volume.
    pub fn quick() -> Self {
        Scale {
            blocks_per_chip: 12,
            write_multiplier: 1.0,
            wordline_trials: 80,
            seed: 42,
            tiny_blocks: false,
        }
    }

    /// Smoke scale for unit/integration tests: miniature blocks so even
    /// erSSD runs in milliseconds. Magnitudes shrink but orderings hold.
    pub fn smoke() -> Self {
        Scale {
            blocks_per_chip: 64,
            write_multiplier: 1.0,
            wordline_trials: 25,
            seed: 42,
            tiny_blocks: true,
        }
    }

    /// The SSD configuration for system-level runs at this scale.
    pub fn ssd_config(&self) -> SsdConfig {
        if self.tiny_blocks {
            let geometry = Geometry {
                tech: CellTech::Tlc,
                blocks: self.blocks_per_chip,
                wordlines_per_block: 8,
                page_bytes: 16 * 1024,
                spare_bytes: 1024,
            };
            let ftl = FtlConfig {
                geometry,
                n_chips: 2,
                chips_per_channel: 1,
                write_alloc: Default::default(),
                lock_coalescing: false,
                coalesce_window: 64,
                op_ratio: 0.125,
                gc_free_threshold: 2,
                block_min_plocks: 4,
                eager_gc_erase: false,
                gc_victim: Default::default(),
                timing: TimingSpec::paper(),
                faults: evanesco_ftl::config::FaultConfig::none(),
                reliability: evanesco_ftl::config::ReliabilityConfig::paper(),
            };
            SsdConfig {
                channels: 2,
                chips_per_channel: 1,
                ftl,
                track_tags: false,
                stale_audit: false,
            }
        } else {
            SsdConfig::scaled(self.blocks_per_chip)
        }
    }

    /// Measured write volume in pages for a given logical capacity.
    pub fn main_write_pages(&self, logical_pages: u64) -> u64 {
        ((logical_pages as f64) * self.write_multiplier).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_keeps_paper_block_shape() {
        let cfg = Scale::full().ssd_config();
        assert_eq!(cfg.ftl.geometry.pages_per_block(), 576);
        assert_eq!(cfg.n_chips(), 8);
    }

    #[test]
    fn smoke_scale_is_tiny() {
        let s = Scale::smoke();
        let cfg = s.ssd_config();
        cfg.validate();
        assert!(cfg.ftl.physical_pages() < 10_000);
        assert_eq!(s.main_write_pages(1000), 1000);
    }
}

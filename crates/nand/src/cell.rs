//! Multi-level cell technology: state encodings, page types and the Gray-code
//! bit mapping used by read operations (paper §2.1 and Figure 2).
//!
//! A cell storing `m` bits uses `2^m` threshold-voltage states. Each page
//! type (LSB/CSB/MSB) reads one bit per cell, and the Gray coding guarantees
//! adjacent states differ in exactly one bit, so a single-state mixup costs a
//! single bit error.

use std::fmt;

/// NAND cell technology: how many bits one flash cell stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellTech {
    /// Single-level cell: 1 bit, 2 states.
    Slc,
    /// Multi-level cell: 2 bits, 4 states.
    Mlc,
    /// Triple-level cell: 3 bits, 8 states (the paper's target technology).
    Tlc,
    /// Quad-level cell: 4 bits, 16 states.
    Qlc,
}

impl CellTech {
    /// Bits stored per cell.
    pub fn bits_per_cell(&self) -> u8 {
        match self {
            CellTech::Slc => 1,
            CellTech::Mlc => 2,
            CellTech::Tlc => 3,
            CellTech::Qlc => 4,
        }
    }

    /// Number of Vth states (`2^bits`).
    pub fn n_states(&self) -> usize {
        1usize << self.bits_per_cell()
    }

    /// Rated program/erase endurance (paper §2.1: MLC ~3 000 cycles,
    /// TLC ~1 000 cycles).
    pub fn rated_pe_cycles(&self) -> u32 {
        match self {
            CellTech::Slc => 50_000,
            CellTech::Mlc => 3_000,
            CellTech::Tlc => 1_000,
            CellTech::Qlc => 500,
        }
    }

    /// All page types for this technology, in program order.
    pub fn page_types(&self) -> &'static [PageType] {
        match self {
            CellTech::Slc => &[PageType::Lsb],
            CellTech::Mlc => &[PageType::Lsb, PageType::Msb],
            CellTech::Tlc => &[PageType::Lsb, PageType::Csb, PageType::Msb],
            CellTech::Qlc => &[PageType::Lsb, PageType::Csb, PageType::Msb, PageType::Top],
        }
    }
}

impl fmt::Display for CellTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellTech::Slc => "SLC",
            CellTech::Mlc => "MLC",
            CellTech::Tlc => "TLC",
            CellTech::Qlc => "QLC",
        };
        f.write_str(s)
    }
}

/// Which of a wordline's pages a bit belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageType {
    /// Least-significant-bit page.
    Lsb,
    /// Central-significant-bit page (TLC/QLC only).
    Csb,
    /// Most-significant-bit page.
    Msb,
    /// Fourth page (QLC only).
    Top,
}

impl PageType {
    /// Index (program-order slot) of the page type within a wordline of the
    /// given technology. For MLC the wordline holds LSB then MSB, so
    /// `Msb.index_in(Mlc) == 1` while `Msb.index_in(Tlc) == 2`.
    ///
    /// # Panics
    ///
    /// Panics if the technology has no such page (e.g. CSB on MLC).
    pub fn index_in(&self, tech: CellTech) -> u8 {
        tech.page_types()
            .iter()
            .position(|t| t == self)
            .unwrap_or_else(|| panic!("{tech} has no {self} page")) as u8
    }

    /// Page type from its wordline slot index for the given technology.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range for the technology.
    pub fn from_index(idx: u8, tech: CellTech) -> Self {
        let types = tech.page_types();
        assert!((idx as usize) < types.len(), "page-type index {idx} out of range for {tech}");
        types[idx as usize]
    }
}

impl fmt::Display for PageType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PageType::Lsb => "LSB",
            PageType::Csb => "CSB",
            PageType::Msb => "MSB",
            PageType::Top => "TOP",
        };
        f.write_str(s)
    }
}

/// A threshold-voltage state index: `0` is the erased state `E`, `1..` are
/// the programmed states `P1..`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VthState(pub u8);

impl VthState {
    /// The erased state.
    pub const ERASED: VthState = VthState(0);

    /// Whether this is the erased state.
    pub fn is_erased(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for VthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_erased() {
            f.write_str("E")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

/// Gray-code bit value of `state` on page `ty` for `tech` (paper Figure 2).
///
/// Encodings (state order E, P1, P2, ...; bit tuple is written MSB→LSB):
/// * SLC: `1, 0`
/// * MLC: `11, 10, 00, 01` (MSB, LSB)
/// * TLC: `111, 110, 100, 000, 010, 011, 001, 101` (MSB, CSB, LSB)
/// * QLC: a standard 4-bit Gray code.
///
/// # Panics
///
/// Panics if the state or page type is invalid for the technology.
pub fn state_bit(tech: CellTech, state: VthState, ty: PageType) -> u8 {
    let s = state.0 as usize;
    assert!(s < tech.n_states(), "state {state} invalid for {tech}");
    match tech {
        CellTech::Slc => {
            assert_eq!(ty, PageType::Lsb, "SLC has only an LSB page");
            [1u8, 0][s]
        }
        CellTech::Mlc => match ty {
            PageType::Lsb => [1u8, 0, 0, 1][s],
            PageType::Msb => [1u8, 1, 0, 0][s],
            _ => panic!("MLC has no {ty} page"),
        },
        CellTech::Tlc => match ty {
            PageType::Lsb => [1u8, 0, 0, 0, 0, 1, 1, 1][s],
            PageType::Csb => [1u8, 1, 0, 0, 1, 1, 0, 0][s],
            PageType::Msb => [1u8, 1, 1, 0, 0, 0, 0, 1][s],
            PageType::Top => panic!("TLC has no TOP page"),
        },
        CellTech::Qlc => {
            // Reflected-binary Gray code; bit k of gray(s).
            let gray = (s ^ (s >> 1)) as u8;
            let bit_idx = ty.index_in(CellTech::Qlc);
            // Invert so the all-erased state reads all-ones, like the others.
            1 - ((gray >> bit_idx) & 1)
        }
    }
}

/// Indices of the inter-state boundaries at which the bit of page `ty` flips.
///
/// Boundary `b` separates state `b` from state `b + 1`. A read of page `ty`
/// applies one read-reference voltage per returned boundary (paper §2.1:
/// TLC uses a 2-3-2 split across LSB/CSB/MSB).
pub fn read_boundaries(tech: CellTech, ty: PageType) -> Vec<usize> {
    let n = tech.n_states();
    (0..n - 1)
        .filter(|&b| {
            state_bit(tech, VthState(b as u8), ty) != state_bit(tech, VthState(b as u8 + 1), ty)
        })
        .collect()
}

/// Nominal Vth distribution parameters for each state: `(mean, sigma)` in
/// volts at zero P/E cycles and zero retention.
///
/// Values are synthetic but shaped like published TLC characterization data:
/// a wide, deeply-negative erased state and evenly spaced programmed states
/// squeezed into the fixed design window, with margins shrinking as the
/// state count grows (paper Figure 2).
pub fn nominal_states(tech: CellTech) -> Vec<(f64, f64)> {
    match tech {
        CellTech::Slc => vec![(-2.5, 0.45), (2.5, 0.20)],
        CellTech::Mlc => vec![(-2.5, 0.45), (1.0, 0.22), (2.4, 0.22), (3.8, 0.22)],
        CellTech::Tlc => vec![
            (-2.5, 0.45),
            (0.8, 0.115),
            (1.5, 0.115),
            (2.2, 0.115),
            (2.9, 0.115),
            (3.6, 0.115),
            (4.3, 0.115),
            (5.0, 0.115),
        ],
        CellTech::Qlc => {
            let mut v = vec![(-2.5, 0.45)];
            for i in 0..15 {
                v.push((0.6 + 0.32 * i as f64, 0.06));
            }
            v
        }
    }
}

/// Read-reference voltages for page `ty`: midpoints of the boundaries where
/// the page's bit flips, computed from [`nominal_states`].
pub fn read_ref_voltages(tech: CellTech, ty: PageType) -> Vec<f64> {
    let states = nominal_states(tech);
    read_boundaries(tech, ty).into_iter().map(|b| (states[b].0 + states[b + 1].0) / 2.0).collect()
}

/// Decodes the bit read from a cell at voltage `vth` for page `ty`:
/// the bit starts at the erased-state value and flips at each crossed
/// reference voltage.
pub fn decode_bit(tech: CellTech, ty: PageType, refs: &[f64], vth: f64) -> u8 {
    let mut bit = state_bit(tech, VthState::ERASED, ty);
    for &r in refs {
        if vth > r {
            bit ^= 1;
        }
    }
    bit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_and_states_consistent() {
        for tech in [CellTech::Slc, CellTech::Mlc, CellTech::Tlc, CellTech::Qlc] {
            assert_eq!(tech.n_states(), 1 << tech.bits_per_cell());
            assert_eq!(tech.page_types().len(), tech.bits_per_cell() as usize);
            assert_eq!(nominal_states(tech).len(), tech.n_states());
        }
    }

    #[test]
    fn gray_code_adjacent_states_differ_by_one_bit() {
        for tech in [CellTech::Mlc, CellTech::Tlc, CellTech::Qlc] {
            for s in 0..tech.n_states() - 1 {
                let diff: u32 = tech
                    .page_types()
                    .iter()
                    .map(|&ty| {
                        (state_bit(tech, VthState(s as u8), ty)
                            ^ state_bit(tech, VthState(s as u8 + 1), ty))
                            as u32
                    })
                    .sum();
                assert_eq!(diff, 1, "{tech} states {s}/{} differ by {diff} bits", s + 1);
            }
        }
    }

    #[test]
    fn erased_state_reads_all_ones() {
        for tech in [CellTech::Slc, CellTech::Mlc, CellTech::Tlc, CellTech::Qlc] {
            for &ty in tech.page_types() {
                assert_eq!(state_bit(tech, VthState::ERASED, ty), 1);
            }
        }
    }

    #[test]
    fn tlc_follows_2_3_2_read_level_split() {
        assert_eq!(read_boundaries(CellTech::Tlc, PageType::Lsb), vec![0, 4]);
        assert_eq!(read_boundaries(CellTech::Tlc, PageType::Csb), vec![1, 3, 5]);
        assert_eq!(read_boundaries(CellTech::Tlc, PageType::Msb), vec![2, 6]);
    }

    #[test]
    fn mlc_follows_1_2_split() {
        // Paper Figure 5: LSB read with V_ref at E|P1 (and P2|P3), MSB at P1|P2.
        assert_eq!(read_boundaries(CellTech::Mlc, PageType::Lsb), vec![0, 2]);
        assert_eq!(read_boundaries(CellTech::Mlc, PageType::Msb), vec![1]);
    }

    #[test]
    fn total_boundaries_cover_each_state_gap_once() {
        for tech in [CellTech::Mlc, CellTech::Tlc, CellTech::Qlc] {
            let mut all: Vec<usize> =
                tech.page_types().iter().flat_map(|&ty| read_boundaries(tech, ty)).collect();
            all.sort_unstable();
            let expected: Vec<usize> = (0..tech.n_states() - 1).collect();
            assert_eq!(all, expected);
        }
    }

    #[test]
    fn decode_bit_recovers_encoded_state() {
        for tech in [CellTech::Slc, CellTech::Mlc, CellTech::Tlc] {
            let states = nominal_states(tech);
            for &ty in tech.page_types() {
                let refs = read_ref_voltages(tech, ty);
                for (s, &(mean, _)) in states.iter().enumerate() {
                    let expect = state_bit(tech, VthState(s as u8), ty);
                    assert_eq!(decode_bit(tech, ty, &refs, mean), expect, "{tech} {ty} state {s}");
                }
            }
        }
    }

    #[test]
    fn nominal_states_monotonically_increasing() {
        for tech in [CellTech::Slc, CellTech::Mlc, CellTech::Tlc, CellTech::Qlc] {
            let s = nominal_states(tech);
            for w in s.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn vth_margin_shrinks_with_density() {
        // Paper §2.1: as m grows, the margin between adjacent states shrinks.
        let margin = |tech: CellTech| {
            let s = nominal_states(tech);
            s.windows(2).map(|w| w[1].0 - w[0].0).fold(f64::MAX, f64::min)
        };
        assert!(margin(CellTech::Slc) > margin(CellTech::Mlc));
        assert!(margin(CellTech::Mlc) > margin(CellTech::Tlc));
        assert!(margin(CellTech::Tlc) > margin(CellTech::Qlc));
    }

    #[test]
    fn page_type_roundtrip() {
        for tech in [CellTech::Slc, CellTech::Mlc, CellTech::Tlc, CellTech::Qlc] {
            for &ty in tech.page_types() {
                assert_eq!(PageType::from_index(ty.index_in(tech), tech), ty);
            }
        }
        assert_eq!(PageType::Msb.index_in(CellTech::Mlc), 1);
        assert_eq!(PageType::Msb.index_in(CellTech::Tlc), 2);
    }

    #[test]
    fn display_strings() {
        assert_eq!(VthState(0).to_string(), "E");
        assert_eq!(VthState(3).to_string(), "P3");
        assert_eq!(CellTech::Tlc.to_string(), "TLC");
        assert_eq!(PageType::Csb.to_string(), "CSB");
    }
}

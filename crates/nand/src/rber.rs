//! Analytic raw bit-error-rate computation.
//!
//! For a page read, a cell in state `s` produces a bit error when its
//! measured Vth lands in a region whose decoded bit differs from the bit
//! encoded by `s`. With Gaussian per-state distributions and fixed read
//! references, the error probability is a sum of Gaussian tail integrals;
//! assuming uniformly random data, the page RBER is the average over states.
//!
//! The analytic path complements the Monte-Carlo wordline simulator in
//! [`crate::vth`]: analytic for speed and smooth parameter sweeps, MC for
//! per-wordline variation and non-Gaussian perturbations (OSR tails).

use crate::cell::{read_ref_voltages, state_bit, PageType, VthState};
use crate::math::phi;
use crate::vth::StateDistributions;

/// Probability that a `N(mean, sigma)` cell lands strictly inside
/// `(lo, hi)`, where the bounds may be infinite.
fn region_prob(mean: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    let p_hi = if hi.is_finite() { phi((hi - mean) / sigma) } else { 1.0 };
    let p_lo = if lo.is_finite() { phi((lo - mean) / sigma) } else { 0.0 };
    (p_hi - p_lo).max(0.0)
}

/// Error probability of a single cell in `state` when page `ty` is read
/// with reference voltages `refs`.
pub fn cell_error_prob(
    dists: &StateDistributions,
    state: VthState,
    ty: PageType,
    refs: &[f64],
) -> f64 {
    let tech = dists.tech();
    let p = dists.params()[state.0 as usize];
    let expect = state_bit(tech, state, ty);
    // Regions are delimited by the refs; region r has bit = erased-bit ^ (r & 1).
    let erased_bit = state_bit(tech, VthState::ERASED, ty);
    let mut err = 0.0;
    for r in 0..=refs.len() {
        let bit = erased_bit ^ ((r & 1) as u8);
        if bit == expect {
            continue;
        }
        let lo = if r == 0 { f64::NEG_INFINITY } else { refs[r - 1] };
        let hi = if r == refs.len() { f64::INFINITY } else { refs[r] };
        err += region_prob(p.mean, p.sigma, lo, hi);
    }
    err
}

/// Page RBER under uniformly random data, with nominal read references.
pub fn page_rber(dists: &StateDistributions, ty: PageType) -> f64 {
    let refs = read_ref_voltages(dists.tech(), ty);
    page_rber_with_refs(dists, ty, &refs)
}

/// Page RBER under uniformly random data with explicit read references.
pub fn page_rber_with_refs(dists: &StateDistributions, ty: PageType, refs: &[f64]) -> f64 {
    let tech = dists.tech();
    let n = tech.n_states();
    (0..n).map(|s| cell_error_prob(dists, VthState(s as u8), ty, refs)).sum::<f64>() / n as f64
}

/// Worst page RBER across all page types of the technology.
pub fn worst_page_rber(dists: &StateDistributions) -> f64 {
    dists.tech().page_types().iter().map(|&ty| page_rber(dists, ty)).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{read_boundaries, CellTech};
    use crate::noise::{adjusted_states, Condition};
    use crate::vth::{WordlineSim, DEFAULT_CELLS_PER_WL};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_tlc_rber_is_tiny() {
        let dists = StateDistributions::nominal(CellTech::Tlc);
        for &ty in CellTech::Tlc.page_types() {
            let r = page_rber(&dists, ty);
            assert!(r < 2e-3, "{ty} fresh rber {r}");
        }
    }

    #[test]
    fn analytic_matches_monte_carlo() {
        let cond = Condition::cycled(1000);
        let dists = adjusted_states(CellTech::Tlc, cond);
        let analytic = page_rber(&dists, PageType::Msb);

        let mut rng = StdRng::seed_from_u64(7);
        let mut total_err = 0usize;
        let trials = 40;
        for _ in 0..trials {
            let mut wl = WordlineSim::with_default_cells(CellTech::Tlc);
            wl.program_random(&mut rng, &dists);
            total_err += wl.count_errors(PageType::Msb);
        }
        let mc = total_err as f64 / (trials * DEFAULT_CELLS_PER_WL) as f64;
        let rel = (mc - analytic).abs() / analytic.max(1e-12);
        assert!(rel < 0.15, "analytic {analytic} vs MC {mc} (rel {rel})");
    }

    #[test]
    fn rber_grows_with_wear_and_retention() {
        let mut prev = 0.0;
        for cond in [
            Condition::fresh(),
            Condition::cycled(500),
            Condition::cycled(1000),
            Condition::one_year_retention(1000),
            Condition::cycled(1000).with_retention_days(5.0 * 365.0),
        ] {
            let dists = adjusted_states(CellTech::Tlc, cond);
            let r = page_rber(&dists, PageType::Msb);
            assert!(r > prev, "rber must grow: {r} after {prev} at {cond:?}");
            prev = r;
        }
    }

    #[test]
    fn cell_error_prob_zero_when_centered() {
        let dists = StateDistributions::nominal(CellTech::Slc);
        let refs = read_ref_voltages(CellTech::Slc, PageType::Lsb);
        for s in 0..2u8 {
            let e = cell_error_prob(&dists, VthState(s), PageType::Lsb, &refs);
            assert!(e < 1e-6, "state {s} error {e}");
        }
    }

    #[test]
    fn shifted_ref_voltage_causes_errors() {
        let dists = StateDistributions::nominal(CellTech::Slc);
        // Move the single read ref inside the programmed distribution: half of
        // the programmed cells now read wrong.
        let bad_ref = dists.params()[1].mean;
        let r = page_rber_with_refs(&dists, PageType::Lsb, &[bad_ref]);
        assert!((r - 0.25).abs() < 0.01, "expected ~0.25, got {r}");
    }

    #[test]
    fn worst_page_is_one_of_the_types() {
        let dists = adjusted_states(CellTech::Tlc, Condition::cycled(1000));
        let worst = worst_page_rber(&dists);
        let max_individual =
            CellTech::Tlc.page_types().iter().map(|&ty| page_rber(&dists, ty)).fold(0.0, f64::max);
        assert_eq!(worst, max_individual);
    }

    #[test]
    fn lsb_vs_msb_error_budget_follows_boundary_count() {
        // CSB has 3 read boundaries vs 2 for LSB/MSB, so under uniform wear it
        // accumulates more errors.
        let dists = adjusted_states(CellTech::Tlc, Condition::cycled(1000));
        let csb = page_rber(&dists, PageType::Csb);
        let msb = page_rber(&dists, PageType::Msb);
        assert!(csb > msb, "csb {csb} should exceed msb {msb}");
        assert_eq!(read_boundaries(CellTech::Tlc, PageType::Csb).len(), 3);
    }
}

//! Error types for the NAND substrate.

use crate::geometry::{BlockId, Ppa};
use std::error::Error;
use std::fmt;

/// Errors raised by the behavioral NAND chip model.
///
/// Each variant corresponds to a rule a real NAND die enforces (or a rule a
/// controller must respect to avoid silent data corruption).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NandError {
    /// The physical address does not exist in this chip's geometry.
    BadAddress {
        /// Offending address.
        ppa: Ppa,
    },
    /// The block index does not exist in this chip's geometry.
    BadBlock {
        /// Offending block index.
        block: BlockId,
    },
    /// A program was attempted on a page that is already programmed.
    /// NAND requires an erase of the full block first (erase-before-program).
    ProgramOnProgrammedPage {
        /// Offending address.
        ppa: Ppa,
    },
    /// Pages inside a block must be programmed strictly in order; skipping
    /// ahead or going back causes unacceptable cell-to-cell interference.
    OutOfOrderProgram {
        /// Offending address.
        ppa: Ppa,
        /// The next page the chip expected to be programmed in that block.
        expected: u32,
    },
    /// A read of a page that was never programmed since the last erase.
    ReadOfErasedPage {
        /// Offending address.
        ppa: Ppa,
    },
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::BadAddress { ppa } => write!(f, "address out of range: {ppa}"),
            NandError::BadBlock { block } => write!(f, "block out of range: {block}"),
            NandError::ProgramOnProgrammedPage { ppa } => {
                write!(f, "program on already-programmed page {ppa} (erase-before-program)")
            }
            NandError::OutOfOrderProgram { ppa, expected } => {
                write!(f, "out-of-order program at {ppa}, expected page index {expected}")
            }
            NandError::ReadOfErasedPage { ppa } => {
                write!(f, "read of erased (never programmed) page {ppa}")
            }
        }
    }
}

impl Error for NandError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs = [
            NandError::BadAddress { ppa: Ppa::new(1, 2) },
            NandError::BadBlock { block: BlockId(7) },
            NandError::ProgramOnProgrammedPage { ppa: Ppa::new(0, 0) },
            NandError::OutOfOrderProgram { ppa: Ppa::new(0, 5), expected: 2 },
            NandError::ReadOfErasedPage { ppa: Ppa::new(3, 4) },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("out"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NandError>();
    }
}

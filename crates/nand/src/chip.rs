//! Behavioral NAND chip model.
//!
//! This layer tracks what a controller can observe through the flash
//! interface — page contents, program/erase rules, cycle counts and
//! latencies — without per-cell state. The Evanesco layer
//! (`evanesco-core`) wraps this chip to add pAP/bAP access-permission
//! flags and the `pLock`/`bLock` commands.
//!
//! Enforced NAND rules:
//!
//! * **erase-before-program** — a programmed page cannot be reprogrammed;
//! * **in-order program** — pages within a block must be programmed in
//!   strictly increasing order;
//! * erase works at block granularity only.

use crate::error::NandError;
use crate::geometry::{BlockId, Geometry, Ppa};
use crate::snapshot::{Dec, Enc, SnapshotError};
use crate::timing::{Nanos, TimingSpec};

/// Fraction of `tPROG` that must have elapsed before a torn (power-cut)
/// program leaves ECC-decodable data behind. Below this, the page reads as
/// uncorrectable garbage; above it, the content (and its OOB metadata) is
/// recoverable — by the controller *and* by a forensic attacker.
pub const TORN_PROGRAM_READABLE_FRACTION: f64 = 0.5;

/// Fraction of `tBERS` after which an interrupted erase has destroyed the
/// block's data. Erase pulses strip charge quickly: beyond this point the
/// old contents are gone even though the block is not cleanly erased.
pub const TORN_ERASE_DATA_WIPE_FRACTION: f64 = 0.25;

/// Fraction of `tscrub` needed for an interrupted one-shot reprogram to
/// have destroyed the target page. Below it, the original data survives.
pub const TORN_SCRUB_DESTROY_FRACTION: f64 = 0.5;

/// OOB (spare-area) metadata the FTL stores alongside each page. This is
/// what a power-up recovery scan reads to rebuild the mapping tables: the
/// logical address, the security requirement of the content, and a
/// monotonically-increasing write sequence number that orders versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageOob {
    /// Logical page address the content belongs to.
    pub lpa: u64,
    /// Whether the content requires sanitization on invalidation.
    pub secure: bool,
    /// FTL-wide program sequence number (higher = newer version).
    pub seq: u64,
}

/// The payload stored in one page.
///
/// For system-level simulations carrying full 16-KiB buffers around would
/// dominate memory for zero fidelity gain, so a page stores a 64-bit
/// **content tag** (think: hash of the real data, as the paper's VerTrace
/// uses MD5 digests) plus an optional real byte payload for tests and
/// examples that want to read data back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageData {
    tag: u64,
    payload: Option<Box<[u8]>>,
    oob: Option<PageOob>,
}

impl PageData {
    /// A page identified only by a content tag.
    pub fn tagged(tag: u64) -> Self {
        PageData { tag, payload: None, oob: None }
    }

    /// A page with a real byte payload (tag is a cheap FNV-1a of the bytes).
    pub fn with_payload(bytes: &[u8]) -> Self {
        let mut tag: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            tag ^= b as u64;
            tag = tag.wrapping_mul(0x100_0000_01b3);
        }
        PageData { tag, payload: Some(bytes.into()), oob: None }
    }

    /// Attaches (or replaces) OOB metadata; the FTL stamps every program
    /// with this so a recovery scan can rebuild its tables.
    #[must_use]
    pub fn with_oob(mut self, oob: PageOob) -> Self {
        self.oob = Some(oob);
        self
    }

    /// The content tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// The byte payload, if one was stored.
    pub fn payload(&self) -> Option<&[u8]> {
        self.payload.as_deref()
    }

    /// The OOB metadata, if the writer stamped any.
    pub fn oob(&self) -> Option<PageOob> {
        self.oob
    }
}

/// What a read returns about the addressed page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageContent {
    /// Page erased since the last block erase; reads as all-ones.
    Erased,
    /// Page holds programmed data.
    Data(PageData),
    /// Page was destroyed in place (scrubbed / one-shot reprogrammed);
    /// the original data is unrecoverable, reads return garbage.
    Destroyed,
    /// Program was interrupted by a power cut. `data` is `Some` when enough
    /// of `tPROG` elapsed for ECC to still decode the partial page — in
    /// which case the content is visible both to the controller and to a
    /// forensic attacker — and `None` when the page reads as garbage.
    Torn { data: Option<PageData> },
}

impl PageContent {
    /// Programmed data, if present (including decodable torn data).
    pub fn data(&self) -> Option<&PageData> {
        match self {
            PageContent::Data(d) => Some(d),
            PageContent::Torn { data } => data.as_ref(),
            _ => None,
        }
    }

    /// Whether this content came from an interrupted program.
    pub fn is_torn(&self) -> bool {
        matches!(self, PageContent::Torn { .. })
    }
}

/// Result of a chip read operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutput {
    /// The page content observed on the interface.
    pub content: PageContent,
    /// Array-access latency of the operation (excludes channel transfer).
    pub latency: Nanos,
}

impl ReadOutput {
    /// Programmed data, if the read returned any.
    pub fn data(&self) -> Option<PageData> {
        self.content.data().cloned()
    }
}

/// Lifecycle state of a page slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Erased,
    Programmed,
    Destroyed,
    /// Torn program whose partial page still decodes under ECC.
    TornReadable,
    /// Torn program that reads as garbage on the interface. The tag,
    /// payload and OOB are still retained internally: checkpoints have
    /// always serialized torn data regardless of readability, and the
    /// stream must stay byte-identical.
    TornGarbage,
}

/// Dense per-page slot: fixed-size and `Copy`, no heap pointers. A byte
/// payload (only tests and examples store one; system-level runs use
/// content tags) lives in the chip-level [`PayloadPool`] and is referenced
/// by index, so a block erase recycles buffers instead of freeing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PageSlot {
    state: SlotState,
    tag: u64,
    payload: Option<u32>,
    oob: Option<PageOob>,
}

impl PageSlot {
    const ERASED: PageSlot =
        PageSlot { state: SlotState::Erased, tag: 0, payload: None, oob: None };
}

/// Chip-level arena for page byte payloads. Buffers are never freed while
/// the chip lives: releasing a slot pushes its index on the free list, and
/// the next store reuses the allocation (clear + extend keeps capacity).
#[derive(Debug, Clone, Default)]
struct PayloadPool {
    bufs: Vec<Vec<u8>>,
    free: Vec<u32>,
}

impl PayloadPool {
    fn store(&mut self, bytes: &[u8]) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                let buf = &mut self.bufs[idx as usize];
                buf.clear();
                buf.extend_from_slice(bytes);
                idx
            }
            None => {
                let idx = u32::try_from(self.bufs.len()).expect("payload pool overflow");
                self.bufs.push(bytes.to_vec());
                idx
            }
        }
    }

    fn release(&mut self, idx: u32) {
        self.free.push(idx);
    }

    fn get(&self, idx: u32) -> &[u8] {
        &self.bufs[idx as usize]
    }
}

/// Moves a [`PageData`]'s payload into the pool and returns the dense slot.
fn intern_slot(pool: &mut PayloadPool, data: PageData, state: SlotState) -> PageSlot {
    let PageData { tag, payload, oob } = data;
    PageSlot { state, tag, payload: payload.map(|p| pool.store(&p)), oob }
}

/// Clears a slot, returning its payload buffer (if any) to the pool.
fn retire_slot(pool: &mut PayloadPool, slot: &mut PageSlot, state: SlotState) {
    if let Some(idx) = slot.payload.take() {
        pool.release(idx);
    }
    *slot = PageSlot { state, ..PageSlot::ERASED };
}

/// One erase block.
#[derive(Debug, Clone)]
struct Block {
    slots: Vec<PageSlot>,
    /// Next in-order program index.
    next_program: u32,
    erase_count: u64,
    /// Simulation time of the last erase, for open-interval tracking.
    last_erase_at: Option<Nanos>,
    /// An erase of this block was interrupted by a power cut. Detectable
    /// on power-up via a blank-check / margin read: the block is neither
    /// cleanly erased nor validly programmed.
    torn_erase: bool,
}

impl Block {
    fn new(pages: u32) -> Self {
        Block {
            slots: vec![PageSlot::ERASED; pages as usize],
            next_program: 0,
            erase_count: 0,
            last_erase_at: None,
            torn_erase: false,
        }
    }
}

/// Cumulative operation counters of a chip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChipStats {
    /// Page reads.
    pub reads: u64,
    /// Page programs.
    pub programs: u64,
    /// Block erases.
    pub erases: u64,
    /// In-place page destructions (scrubs).
    pub scrubs: u64,
    /// Programs interrupted by a power cut.
    pub torn_programs: u64,
    /// Erases interrupted by a power cut.
    pub torn_erases: u64,
}

/// A behavioral NAND flash chip.
#[derive(Debug, Clone)]
pub struct Chip {
    geom: Geometry,
    timing: TimingSpec,
    blocks: Vec<Block>,
    pool: PayloadPool,
    stats: ChipStats,
}

impl Chip {
    /// Creates an all-erased chip with paper timing.
    pub fn new(geom: Geometry) -> Self {
        Self::with_timing(geom, TimingSpec::paper())
    }

    /// Creates an all-erased chip with explicit timing.
    pub fn with_timing(geom: Geometry, timing: TimingSpec) -> Self {
        let blocks = (0..geom.blocks).map(|_| Block::new(geom.pages_per_block())).collect();
        Chip { geom, timing, blocks, pool: PayloadPool::default(), stats: ChipStats::default() }
    }

    /// Rebuilds a [`PageData`] view of a slot (copies the pooled payload).
    fn slot_data(&self, slot: &PageSlot) -> PageData {
        PageData {
            tag: slot.tag,
            payload: slot.payload.map(|idx| Box::from(self.pool.get(idx))),
            oob: slot.oob,
        }
    }

    /// Serializes a slot's data section exactly as the pre-pool encoding
    /// wrote an inline [`PageData`]: tag, optional payload bytes, optional
    /// OOB. The pool is an in-memory detail; it never reaches the stream.
    fn encode_slot_data(&self, e: &mut Enc, slot: &PageSlot) {
        e.u64(slot.tag);
        e.opt(&slot.payload, |e, &idx| e.bytes(self.pool.get(idx)));
        e.opt(&slot.oob, |e, oob| {
            e.u64(oob.lpa);
            e.bool(oob.secure);
            e.u64(oob.seq);
        });
    }

    fn slot_content(&self, slot: &PageSlot) -> PageContent {
        match slot.state {
            SlotState::Erased => PageContent::Erased,
            SlotState::Programmed => PageContent::Data(self.slot_data(slot)),
            SlotState::Destroyed => PageContent::Destroyed,
            SlotState::TornReadable => PageContent::Torn { data: Some(self.slot_data(slot)) },
            SlotState::TornGarbage => PageContent::Torn { data: None },
        }
    }

    /// The chip geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// The chip's latency table.
    pub fn timing(&self) -> &TimingSpec {
        &self.timing
    }

    /// Cumulative operation counters.
    pub fn stats(&self) -> ChipStats {
        self.stats
    }

    fn check_addr(&self, ppa: Ppa) -> Result<(), NandError> {
        if self.geom.contains(ppa) {
            Ok(())
        } else {
            Err(NandError::BadAddress { ppa })
        }
    }

    fn check_block(&self, block: BlockId) -> Result<(), NandError> {
        if block.0 < self.geom.blocks {
            Ok(())
        } else {
            Err(NandError::BadBlock { block })
        }
    }

    /// Reads a page.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::BadAddress`] for an out-of-range address.
    pub fn read(&mut self, ppa: Ppa) -> Result<ReadOutput, NandError> {
        self.check_addr(ppa)?;
        self.stats.reads += 1;
        let slot = self.blocks[ppa.block.0 as usize].slots[ppa.page.0 as usize];
        let content = self.slot_content(&slot);
        Ok(ReadOutput { content, latency: self.timing.t_read })
    }

    /// Programs a page with `data`.
    ///
    /// # Errors
    ///
    /// * [`NandError::BadAddress`] — out-of-range address.
    /// * [`NandError::ProgramOnProgrammedPage`] — erase-before-program
    ///   violation.
    /// * [`NandError::OutOfOrderProgram`] — pages of a block must be
    ///   programmed in increasing order.
    pub fn program(&mut self, ppa: Ppa, data: PageData) -> Result<Nanos, NandError> {
        self.check_addr(ppa)?;
        let block = &mut self.blocks[ppa.block.0 as usize];
        if block.slots[ppa.page.0 as usize].state != SlotState::Erased {
            return Err(NandError::ProgramOnProgrammedPage { ppa });
        }
        if ppa.page.0 != block.next_program {
            return Err(NandError::OutOfOrderProgram { ppa, expected: block.next_program });
        }
        block.slots[ppa.page.0 as usize] = intern_slot(&mut self.pool, data, SlotState::Programmed);
        block.next_program += 1;
        self.stats.programs += 1;
        Ok(self.timing.t_prog)
    }

    /// Erases a block, resetting every page to the erased state.
    ///
    /// `now` is the current simulation time; it is recorded so the next
    /// program to the block can compute its open interval.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::BadBlock`] for an out-of-range block.
    pub fn erase(&mut self, block: BlockId, now: Nanos) -> Result<Nanos, NandError> {
        self.check_block(block)?;
        let b = &mut self.blocks[block.0 as usize];
        for slot in &mut b.slots {
            retire_slot(&mut self.pool, slot, SlotState::Erased);
        }
        b.next_program = 0;
        b.erase_count += 1;
        b.last_erase_at = Some(now);
        b.torn_erase = false;
        self.stats.erases += 1;
        Ok(self.timing.t_bers)
    }

    /// Models a program interrupted by a power cut after `fraction` of
    /// `tPROG` had elapsed. The slot ends up [torn](PageContent::Torn):
    /// occupied (it must be erased before reuse), decodable only when
    /// `fraction >= `[`TORN_PROGRAM_READABLE_FRACTION`].
    ///
    /// # Errors
    ///
    /// Same preconditions as [`Chip::program`].
    pub fn interrupt_program(
        &mut self,
        ppa: Ppa,
        data: PageData,
        fraction: f64,
    ) -> Result<(), NandError> {
        self.check_addr(ppa)?;
        let block = &mut self.blocks[ppa.block.0 as usize];
        if block.slots[ppa.page.0 as usize].state != SlotState::Erased {
            return Err(NandError::ProgramOnProgrammedPage { ppa });
        }
        if ppa.page.0 != block.next_program {
            return Err(NandError::OutOfOrderProgram { ppa, expected: block.next_program });
        }
        let state = if fraction >= TORN_PROGRAM_READABLE_FRACTION {
            SlotState::TornReadable
        } else {
            SlotState::TornGarbage
        };
        block.slots[ppa.page.0 as usize] = intern_slot(&mut self.pool, data, state);
        block.next_program += 1;
        self.stats.torn_programs += 1;
        Ok(())
    }

    /// Models an erase interrupted by a power cut after `fraction` of
    /// `tBERS` had elapsed. The block is flagged as torn-erased (always
    /// detectable on power-up); past [`TORN_ERASE_DATA_WIPE_FRACTION`] the
    /// old contents are additionally destroyed. Either way the block must
    /// be re-erased before reuse.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::BadBlock`] for an out-of-range block.
    pub fn interrupt_erase(&mut self, block: BlockId, fraction: f64) -> Result<(), NandError> {
        self.check_block(block)?;
        let b = &mut self.blocks[block.0 as usize];
        if fraction >= TORN_ERASE_DATA_WIPE_FRACTION {
            for slot in &mut b.slots {
                if slot.state != SlotState::Erased {
                    retire_slot(&mut self.pool, slot, SlotState::Destroyed);
                }
            }
        }
        b.torn_erase = true;
        self.stats.torn_erases += 1;
        Ok(())
    }

    /// Models a scrub (one-shot destructive reprogram) interrupted after
    /// `fraction` of `tscrub`. Past [`TORN_SCRUB_DESTROY_FRACTION`] the
    /// page is destroyed as intended; before it, the original data
    /// survives untouched.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::BadAddress`] for an out-of-range address.
    pub fn interrupt_scrub(&mut self, ppa: Ppa, fraction: f64) -> Result<(), NandError> {
        self.check_addr(ppa)?;
        if fraction >= TORN_SCRUB_DESTROY_FRACTION {
            let block = &mut self.blocks[ppa.block.0 as usize];
            retire_slot(
                &mut self.pool,
                &mut block.slots[ppa.page.0 as usize],
                SlotState::Destroyed,
            );
            if ppa.page.0 >= block.next_program {
                block.next_program = ppa.page.0 + 1;
            }
        }
        Ok(())
    }

    /// Whether the last erase of `block` was interrupted (power-up
    /// blank-check signature). Metadata probe, not a flash operation.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::BadBlock`] for an out-of-range block.
    pub fn block_torn_erase(&self, block: BlockId) -> Result<bool, NandError> {
        self.check_block(block)?;
        Ok(self.blocks[block.0 as usize].torn_erase)
    }

    /// Whether a page holds a torn (interrupted) program. Metadata probe.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::BadAddress`] for an out-of-range address.
    pub fn page_is_torn(&self, ppa: Ppa) -> Result<bool, NandError> {
        self.check_addr(ppa)?;
        let state = self.blocks[ppa.block.0 as usize].slots[ppa.page.0 as usize].state;
        Ok(matches!(state, SlotState::TornReadable | SlotState::TornGarbage))
    }

    /// Destroys a page's data in place (models scrubbing / one-shot
    /// reprogramming used by the scrSSD baseline). The slot stays occupied:
    /// NAND cannot re-erase a single page.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::BadAddress`] for an out-of-range address.
    pub fn destroy_page(&mut self, ppa: Ppa) -> Result<Nanos, NandError> {
        self.check_addr(ppa)?;
        let block = &mut self.blocks[ppa.block.0 as usize];
        retire_slot(&mut self.pool, &mut block.slots[ppa.page.0 as usize], SlotState::Destroyed);
        // Keep the in-order pointer past this page if it was still erased.
        if ppa.page.0 >= block.next_program {
            block.next_program = ppa.page.0 + 1;
        }
        self.stats.scrubs += 1;
        Ok(self.timing.t_scrub)
    }

    /// Whether a page currently holds programmed (or destroyed) content —
    /// i.e. it has been written since the last block erase. This is a
    /// metadata probe, not a flash operation; it does not count as a read.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::BadAddress`] for an out-of-range address.
    pub fn page_is_written(&self, ppa: Ppa) -> Result<bool, NandError> {
        self.check_addr(ppa)?;
        let state = self.blocks[ppa.block.0 as usize].slots[ppa.page.0 as usize].state;
        Ok(state != SlotState::Erased)
    }

    /// Erase count of a block.
    ///
    /// # Panics
    ///
    /// Panics if the block is out of range.
    pub fn erase_count(&self, block: BlockId) -> u64 {
        self.blocks[block.0 as usize].erase_count
    }

    /// Time of the last erase of `block`, if it was ever erased.
    pub fn last_erase_at(&self, block: BlockId) -> Option<Nanos> {
        self.blocks[block.0 as usize].last_erase_at
    }

    /// Next in-order programmable page index of a block (equals
    /// pages-per-block when the block is fully programmed).
    pub fn next_program_index(&self, block: BlockId) -> u32 {
        self.blocks[block.0 as usize].next_program
    }

    /// Raw interface dump of a whole block, as a forensic attacker sees it
    /// through standard flash commands (no FTL, no file system).
    pub fn raw_block_dump(&self, block: BlockId) -> Vec<PageContent> {
        self.blocks[block.0 as usize].slots.iter().map(|s| self.slot_content(s)).collect()
    }

    /// Serializes the full chip state — geometry, timing, every block's
    /// slots and wear counters, and the operation stats — into a
    /// checkpoint stream.
    pub fn encode_state(&self, e: &mut Enc) {
        e.tag(TAG_CHIP);
        self.geom.encode_snapshot(e);
        self.timing.encode_snapshot(e);
        e.usize(self.blocks.len());
        for b in &self.blocks {
            e.u32(b.next_program);
            e.u64(b.erase_count);
            e.opt(&b.last_erase_at, |e, t| e.u64(t.0));
            e.bool(b.torn_erase);
            e.usize(b.slots.len());
            for slot in &b.slots {
                match slot.state {
                    SlotState::Erased => e.u8(0),
                    SlotState::Programmed => {
                        e.u8(1);
                        self.encode_slot_data(e, slot);
                    }
                    SlotState::Destroyed => e.u8(2),
                    SlotState::TornReadable | SlotState::TornGarbage => {
                        e.u8(3);
                        self.encode_slot_data(e, slot);
                        e.bool(slot.state == SlotState::TornReadable);
                    }
                }
            }
        }
        for v in [
            self.stats.reads,
            self.stats.programs,
            self.stats.erases,
            self.stats.scrubs,
            self.stats.torn_programs,
            self.stats.torn_erases,
        ] {
            e.u64(v);
        }
    }

    /// Reconstructs a chip from a stream written by [`Chip::encode_state`].
    ///
    /// # Errors
    ///
    /// Fails on truncation or structurally invalid content.
    pub fn decode_state(d: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        d.expect_tag(TAG_CHIP, "nand-chip")?;
        let geom = Geometry::decode_snapshot(d)?;
        let timing = TimingSpec::decode_snapshot(d)?;
        let n_blocks = d.usize()?;
        if n_blocks != geom.blocks as usize {
            return Err(SnapshotError::Corrupt(format!(
                "chip block count {n_blocks} does not match geometry ({})",
                geom.blocks
            )));
        }
        let mut blocks = Vec::with_capacity(n_blocks);
        let mut pool = PayloadPool::default();
        for _ in 0..n_blocks {
            let next_program = d.u32()?;
            let erase_count = d.u64()?;
            let last_erase_at = d.opt(|d| Ok(Nanos(d.u64()?)))?;
            let torn_erase = d.bool()?;
            let n_slots = d.usize()?;
            if n_slots != geom.pages_per_block() as usize {
                return Err(SnapshotError::Corrupt(format!(
                    "block slot count {n_slots} does not match geometry ({})",
                    geom.pages_per_block()
                )));
            }
            let mut slots = Vec::with_capacity(n_slots);
            for _ in 0..n_slots {
                slots.push(match d.u8()? {
                    0 => PageSlot::ERASED,
                    1 => intern_slot(&mut pool, decode_page_data(d)?, SlotState::Programmed),
                    2 => PageSlot { state: SlotState::Destroyed, ..PageSlot::ERASED },
                    3 => {
                        let data = decode_page_data(d)?;
                        let readable = d.bool()?;
                        let state =
                            if readable { SlotState::TornReadable } else { SlotState::TornGarbage };
                        intern_slot(&mut pool, data, state)
                    }
                    b => {
                        return Err(SnapshotError::Corrupt(format!(
                            "unknown page-slot tag {b:#04x}"
                        )))
                    }
                });
            }
            blocks.push(Block { slots, next_program, erase_count, last_erase_at, torn_erase });
        }
        let stats = ChipStats {
            reads: d.u64()?,
            programs: d.u64()?,
            erases: d.u64()?,
            scrubs: d.u64()?,
            torn_programs: d.u64()?,
            torn_erases: d.u64()?,
        };
        Ok(Chip { geom, timing, blocks, pool, stats })
    }
}

/// Section tag for a behavioral chip in a checkpoint stream.
const TAG_CHIP: u8 = 0x10;

fn decode_page_data(d: &mut Dec<'_>) -> Result<PageData, SnapshotError> {
    let tag = d.u64()?;
    let payload = d.opt(|d| Ok(Box::<[u8]>::from(d.bytes()?)))?;
    let oob = d.opt(|d| Ok(PageOob { lpa: d.u64()?, secure: d.bool()?, seq: d.u64()? }))?;
    Ok(PageData { tag, payload, oob })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PageId;

    fn small_chip() -> Chip {
        Chip::new(Geometry::small_tlc())
    }

    #[test]
    fn program_then_read_roundtrip() {
        let mut chip = small_chip();
        let ppa = Ppa::new(3, 0);
        chip.program(ppa, PageData::tagged(99)).unwrap();
        let out = chip.read(ppa).unwrap();
        assert_eq!(out.data().unwrap().tag(), 99);
        assert_eq!(out.latency, TimingSpec::paper().t_read);
    }

    #[test]
    fn payload_roundtrip_and_tagging() {
        let mut chip = small_chip();
        let data = PageData::with_payload(b"secret medical record");
        let tag = data.tag();
        chip.program(Ppa::new(0, 0), data).unwrap();
        let out = chip.read(Ppa::new(0, 0)).unwrap();
        let got = out.data().unwrap();
        assert_eq!(got.tag(), tag);
        assert_eq!(got.payload().unwrap(), b"secret medical record");
        // Distinct content gets distinct tags.
        assert_ne!(PageData::with_payload(b"a").tag(), PageData::with_payload(b"b").tag());
    }

    #[test]
    fn erase_before_program_enforced() {
        let mut chip = small_chip();
        chip.program(Ppa::new(0, 0), PageData::tagged(1)).unwrap();
        let err = chip.program(Ppa::new(0, 0), PageData::tagged(2)).unwrap_err();
        assert!(matches!(err, NandError::ProgramOnProgrammedPage { .. }));
    }

    #[test]
    fn in_order_program_enforced() {
        let mut chip = small_chip();
        let err = chip.program(Ppa::new(0, 5), PageData::tagged(1)).unwrap_err();
        assert!(matches!(err, NandError::OutOfOrderProgram { expected: 0, .. }));
        chip.program(Ppa::new(0, 0), PageData::tagged(1)).unwrap();
        chip.program(Ppa::new(0, 1), PageData::tagged(2)).unwrap();
        let err = chip.program(Ppa::new(0, 3), PageData::tagged(3)).unwrap_err();
        assert!(matches!(err, NandError::OutOfOrderProgram { expected: 2, .. }));
    }

    #[test]
    fn erase_resets_block_and_counts() {
        let mut chip = small_chip();
        let b = BlockId(2);
        for p in 0..4 {
            chip.program(Ppa { block: b, page: PageId(p) }, PageData::tagged(p as u64)).unwrap();
        }
        assert_eq!(chip.erase_count(b), 0);
        chip.erase(b, Nanos::from_millis(5)).unwrap();
        assert_eq!(chip.erase_count(b), 1);
        assert_eq!(chip.last_erase_at(b), Some(Nanos::from_millis(5)));
        assert_eq!(chip.next_program_index(b), 0);
        let out = chip.read(Ppa { block: b, page: PageId(0) }).unwrap();
        assert_eq!(out.content, PageContent::Erased);
        // After erase, programming restarts from page 0.
        chip.program(Ppa { block: b, page: PageId(0) }, PageData::tagged(9)).unwrap();
    }

    #[test]
    fn destroy_page_makes_data_unrecoverable() {
        let mut chip = small_chip();
        let ppa = Ppa::new(1, 0);
        chip.program(ppa, PageData::tagged(42)).unwrap();
        chip.destroy_page(ppa).unwrap();
        let out = chip.read(ppa).unwrap();
        assert_eq!(out.content, PageContent::Destroyed);
        assert!(out.data().is_none());
    }

    #[test]
    fn bad_addresses_rejected() {
        let mut chip = small_chip();
        assert!(matches!(chip.read(Ppa::new(1000, 0)), Err(NandError::BadAddress { .. })));
        assert!(matches!(
            chip.program(Ppa::new(0, 1000), PageData::tagged(0)),
            Err(NandError::BadAddress { .. })
        ));
        assert!(matches!(chip.erase(BlockId(1000), Nanos::ZERO), Err(NandError::BadBlock { .. })));
        assert!(matches!(chip.destroy_page(Ppa::new(1000, 0)), Err(NandError::BadAddress { .. })));
    }

    #[test]
    fn stats_count_operations() {
        let mut chip = small_chip();
        chip.program(Ppa::new(0, 0), PageData::tagged(1)).unwrap();
        chip.read(Ppa::new(0, 0)).unwrap();
        chip.read(Ppa::new(0, 1)).unwrap();
        chip.erase(BlockId(0), Nanos::ZERO).unwrap();
        chip.program(Ppa::new(0, 0), PageData::tagged(2)).unwrap();
        chip.destroy_page(Ppa::new(0, 0)).unwrap();
        let s = chip.stats();
        assert_eq!(s.programs, 2);
        assert_eq!(s.reads, 2);
        assert_eq!(s.erases, 1);
        assert_eq!(s.scrubs, 1);
    }

    #[test]
    fn raw_block_dump_exposes_everything() {
        // The data-versioning vulnerability (paper §2.2): invalidated-but-not-
        // erased data is fully visible to a raw-interface attacker.
        let mut chip = small_chip();
        chip.program(Ppa::new(0, 0), PageData::tagged(7)).unwrap();
        chip.program(Ppa::new(0, 1), PageData::tagged(8)).unwrap();
        let dump = chip.raw_block_dump(BlockId(0));
        assert_eq!(dump[0].data().unwrap().tag(), 7);
        assert_eq!(dump[1].data().unwrap().tag(), 8);
        assert_eq!(dump[2], PageContent::Erased);
    }

    #[test]
    fn torn_program_occupies_slot_and_gates_on_fraction() {
        let mut chip = small_chip();
        let oob = PageOob { lpa: 17, secure: true, seq: 3 };
        // Early cut: unreadable garbage.
        chip.interrupt_program(Ppa::new(0, 0), PageData::tagged(1).with_oob(oob), 0.2).unwrap();
        let out = chip.read(Ppa::new(0, 0)).unwrap();
        assert_eq!(out.content, PageContent::Torn { data: None });
        assert!(chip.page_is_torn(Ppa::new(0, 0)).unwrap());
        assert!(chip.page_is_written(Ppa::new(0, 0)).unwrap());
        // Late cut: partial page still decodes, OOB included.
        chip.interrupt_program(Ppa::new(0, 1), PageData::tagged(2).with_oob(oob), 0.9).unwrap();
        let out = chip.read(Ppa::new(0, 1)).unwrap();
        assert!(out.content.is_torn());
        assert_eq!(out.data().unwrap().oob(), Some(oob));
        // The slot is occupied: erase-before-program still applies, and
        // in-order programming continues past the torn page.
        assert!(chip.program(Ppa::new(0, 1), PageData::tagged(3)).is_err());
        chip.program(Ppa::new(0, 2), PageData::tagged(3)).unwrap();
        assert_eq!(chip.stats().torn_programs, 2);
    }

    #[test]
    fn torn_erase_flagged_and_wipes_past_threshold() {
        let mut chip = small_chip();
        for p in 0..2 {
            chip.program(Ppa::new(4, p), PageData::tagged(p as u64)).unwrap();
        }
        // Early cut: data survives but the torn-erase signature is set.
        chip.interrupt_erase(BlockId(4), 0.1).unwrap();
        assert!(chip.block_torn_erase(BlockId(4)).unwrap());
        assert!(chip.read(Ppa::new(4, 0)).unwrap().data().is_some());
        // Late cut: data destroyed.
        chip.interrupt_erase(BlockId(4), 0.8).unwrap();
        assert_eq!(chip.read(Ppa::new(4, 0)).unwrap().content, PageContent::Destroyed);
        // A clean erase clears the signature.
        chip.erase(BlockId(4), Nanos::ZERO).unwrap();
        assert!(!chip.block_torn_erase(BlockId(4)).unwrap());
        assert_eq!(chip.read(Ppa::new(4, 0)).unwrap().content, PageContent::Erased);
        assert_eq!(chip.stats().torn_erases, 2);
    }

    #[test]
    fn torn_scrub_destroys_only_past_threshold() {
        let mut chip = small_chip();
        chip.program(Ppa::new(2, 0), PageData::tagged(5)).unwrap();
        chip.interrupt_scrub(Ppa::new(2, 0), 0.3).unwrap();
        assert_eq!(chip.read(Ppa::new(2, 0)).unwrap().data().unwrap().tag(), 5);
        chip.interrupt_scrub(Ppa::new(2, 0), 0.7).unwrap();
        assert_eq!(chip.read(Ppa::new(2, 0)).unwrap().content, PageContent::Destroyed);
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let mut chip = small_chip();
        let oob = PageOob { lpa: 5, secure: true, seq: 11 };
        chip.program(Ppa::new(0, 0), PageData::tagged(7).with_oob(oob)).unwrap();
        chip.program(Ppa::new(0, 1), PageData::with_payload(b"payload")).unwrap();
        chip.destroy_page(Ppa::new(0, 1)).unwrap();
        chip.interrupt_program(Ppa::new(0, 2), PageData::tagged(9), 0.9).unwrap();
        chip.interrupt_erase(BlockId(3), 0.1).unwrap();
        chip.erase(BlockId(5), Nanos::from_millis(2)).unwrap();
        chip.read(Ppa::new(0, 0)).unwrap();

        let mut e = Enc::new();
        chip.encode_state(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = Chip::decode_state(&mut d).unwrap();
        d.finish().unwrap();

        assert_eq!(back.geometry(), chip.geometry());
        assert_eq!(back.timing(), chip.timing());
        assert_eq!(back.stats(), chip.stats());
        for b in 0..chip.geometry().blocks {
            assert_eq!(back.raw_block_dump(BlockId(b)), chip.raw_block_dump(BlockId(b)));
            assert_eq!(back.next_program_index(BlockId(b)), chip.next_program_index(BlockId(b)));
            assert_eq!(back.erase_count(BlockId(b)), chip.erase_count(BlockId(b)));
            assert_eq!(back.last_erase_at(BlockId(b)), chip.last_erase_at(BlockId(b)));
            assert_eq!(back.block_torn_erase(BlockId(b)), chip.block_torn_erase(BlockId(b)));
        }
        // Re-encoding the restored chip is byte-identical.
        let mut e2 = Enc::new();
        back.encode_state(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);
    }

    #[test]
    fn snapshot_decode_rejects_bad_slot_tag() {
        let mut chip = small_chip();
        chip.program(Ppa::new(0, 0), PageData::tagged(1)).unwrap();
        let mut e = Enc::new();
        chip.encode_state(&mut e);
        let good = e.into_bytes();
        // Walk the stream to the first slot tag, then corrupt it.
        let mut d = Dec::new(&good);
        d.expect_tag(0x10, "nand-chip").unwrap();
        let _ = Geometry::decode_snapshot(&mut d).unwrap();
        let _ = TimingSpec::decode_snapshot(&mut d).unwrap();
        let _ = d.usize().unwrap(); // block count
        let _ = d.u32().unwrap(); // next_program
        let _ = d.u64().unwrap(); // erase_count
        let _ = d.opt(|d| d.u64()).unwrap(); // last_erase_at
        let _ = d.bool().unwrap(); // torn_erase
        let _ = d.usize().unwrap(); // slot count
        let slot0_off = d.offset();
        let mut bad = good.clone();
        bad[slot0_off] = 9;
        let err = Chip::decode_state(&mut Dec::new(&bad)).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
        // Truncation is also an error, not a panic.
        let err = Chip::decode_state(&mut Dec::new(&good[..good.len() - 4])).unwrap_err();
        assert!(matches!(err, SnapshotError::Truncated { .. }), "{err}");
    }

    #[test]
    fn payload_pool_recycles_buffers_across_erase() {
        let mut chip = small_chip();
        chip.program(Ppa::new(0, 0), PageData::with_payload(b"first")).unwrap();
        chip.erase(BlockId(0), Nanos::ZERO).unwrap();
        chip.program(Ppa::new(0, 0), PageData::with_payload(b"second one")).unwrap();
        let out = chip.read(Ppa::new(0, 0)).unwrap();
        assert_eq!(out.data().unwrap().payload().unwrap(), b"second one");
        // The erase released the first buffer and the second program reused
        // it: the pool still holds exactly one allocation and no free slots.
        assert_eq!(chip.pool.bufs.len(), 1);
        assert!(chip.pool.free.is_empty());
        // Destroying the page releases the buffer back to the free list.
        chip.destroy_page(Ppa::new(0, 0)).unwrap();
        assert_eq!(chip.pool.free.len(), 1);
    }

    #[test]
    fn latencies_come_from_timing_spec() {
        let mut t = TimingSpec::paper();
        t.t_prog = Nanos::from_micros(123);
        let mut chip = Chip::with_timing(Geometry::small_tlc(), t);
        let lat = chip.program(Ppa::new(0, 0), PageData::tagged(0)).unwrap();
        assert_eq!(lat, Nanos::from_micros(123));
    }
}

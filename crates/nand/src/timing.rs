//! Operation latencies and the simulation time base.
//!
//! The paper's SecureSSD configuration (§7): `tREAD` = 80 µs, `tPROG` =
//! 700 µs, `tBERS` = 3.5 ms; from the design-space exploration `tpLock` =
//! 100 µs and `tbLock` = 300 µs; scrubbing (the scrSSD baseline) is also
//! modeled at 100 µs using one-shot programming.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Simulation time in nanoseconds.
///
/// A newtype keeps durations and instants from being silently mixed with
/// unrelated integers across the FTL and emulator crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero duration / epoch instant.
    pub const ZERO: Nanos = Nanos(0);

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Value in (truncated) microseconds.
    pub fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// Value in seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// NAND operation latency table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSpec {
    /// Page read (array → page buffer).
    pub t_read: Nanos,
    /// Page program.
    pub t_prog: Nanos,
    /// Block erase.
    pub t_bers: Nanos,
    /// `pLock`: one-shot low-voltage program of a page's pAP flag cells.
    pub t_plock: Nanos,
    /// `bLock`: one-shot program of a block's SSL cells.
    pub t_block: Nanos,
    /// One-shot scrub (reprogram) of a wordline (scrSSD baseline).
    pub t_scrub: Nanos,
    /// Channel transfer of one full page (page buffer ↔ controller).
    pub t_xfer_page: Nanos,
}

impl TimingSpec {
    /// Serializes the latency table into a checkpoint stream.
    pub fn encode_snapshot(&self, e: &mut crate::snapshot::Enc) {
        for t in [
            self.t_read,
            self.t_prog,
            self.t_bers,
            self.t_plock,
            self.t_block,
            self.t_scrub,
            self.t_xfer_page,
        ] {
            e.u64(t.0);
        }
    }

    /// Inverse of [`TimingSpec::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn decode_snapshot(
        d: &mut crate::snapshot::Dec<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        Ok(TimingSpec {
            t_read: Nanos(d.u64()?),
            t_prog: Nanos(d.u64()?),
            t_bers: Nanos(d.u64()?),
            t_plock: Nanos(d.u64()?),
            t_block: Nanos(d.u64()?),
            t_scrub: Nanos(d.u64()?),
            t_xfer_page: Nanos(d.u64()?),
        })
    }

    /// Paper values (§7 and §5.5).
    pub fn paper() -> Self {
        TimingSpec {
            t_read: Nanos::from_micros(80),
            t_prog: Nanos::from_micros(700),
            t_bers: Nanos::from_micros(3_500),
            t_plock: Nanos::from_micros(100),
            t_block: Nanos::from_micros(300),
            t_scrub: Nanos::from_micros(100),
            // 16 KiB over a ~400 MB/s channel.
            t_xfer_page: Nanos::from_micros(40),
        }
    }
}

impl Default for TimingSpec {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_overhead_bounds_hold() {
        // §5.5: tpLock < 14.3% of tPROG; tbLock < 8.6% of tBERS.
        let t = TimingSpec::paper();
        let plock_frac = t.t_plock.0 as f64 / t.t_prog.0 as f64;
        let block_frac = t.t_block.0 as f64 / t.t_bers.0 as f64;
        assert!(plock_frac <= 0.143 + 1e-9, "plock fraction {plock_frac}");
        assert!(block_frac <= 0.086 + 1e-9, "block fraction {block_frac}");
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::from_micros(100);
        let b = Nanos::from_micros(50);
        assert_eq!(a + b, Nanos::from_micros(150));
        assert_eq!(a - b, Nanos::from_micros(50));
        assert_eq!(b * 3, Nanos::from_micros(150));
        assert_eq!(a.saturating_sub(Nanos::from_millis(1)), Nanos::ZERO);
        let total: Nanos = [a, b, b].into_iter().sum();
        assert_eq!(total, Nanos::from_micros(200));
    }

    #[test]
    fn nanos_display_scales_units() {
        assert_eq!(Nanos(500).to_string(), "500ns");
        assert_eq!(Nanos::from_micros(80).to_string(), "80.0us");
        assert_eq!(Nanos::from_millis(4).to_string(), "4.0ms");
        assert_eq!(Nanos(2_500_000_000).to_string(), "2.500s");
    }

    #[test]
    fn as_conversions() {
        assert_eq!(Nanos::from_micros(7).as_micros(), 7);
        assert!((Nanos::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}

//! Threshold-voltage (Vth) distribution modeling and the Monte-Carlo
//! wordline simulator used by the chip-characterization experiments.
//!
//! Each Vth state is modeled as a Gaussian `N(mean, sigma)` whose parameters
//! depend on the operating condition (P/E cycles, retention time); see
//! [`crate::noise`] for the condition adjustments. The wordline simulator
//! samples one Vth per cell, which lets experiments observe per-wordline
//! variation (box-plot spreads, over-programming tails) that analytic
//! formulas average away.

use crate::cell::{
    decode_bit, nominal_states, read_ref_voltages, state_bit, CellTech, PageType, VthState,
};
use crate::math::sample_normal;
use rand::Rng;

/// Parameters of one Gaussian Vth state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalParams {
    /// Mean threshold voltage in volts.
    pub mean: f64,
    /// Standard deviation in volts.
    pub sigma: f64,
}

impl NormalParams {
    /// Creates distribution parameters.
    pub fn new(mean: f64, sigma: f64) -> Self {
        NormalParams { mean, sigma }
    }
}

/// The set of per-state Vth distributions of a wordline under some operating
/// condition.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDistributions {
    tech: CellTech,
    params: Vec<NormalParams>,
}

impl StateDistributions {
    /// Nominal (fresh, zero-retention) distributions for a technology.
    pub fn nominal(tech: CellTech) -> Self {
        let params =
            nominal_states(tech).into_iter().map(|(m, s)| NormalParams::new(m, s)).collect();
        StateDistributions { tech, params }
    }

    /// Builds from explicit per-state parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameter count does not match the technology's state
    /// count.
    pub fn from_params(tech: CellTech, params: Vec<NormalParams>) -> Self {
        assert_eq!(params.len(), tech.n_states(), "state count mismatch for {tech}");
        StateDistributions { tech, params }
    }

    /// The cell technology.
    pub fn tech(&self) -> CellTech {
        self.tech
    }

    /// Per-state parameters, indexed by [`VthState`].
    pub fn params(&self) -> &[NormalParams] {
        &self.params
    }

    /// Mutable access for condition adjustments.
    pub fn params_mut(&mut self) -> &mut [NormalParams] {
        &mut self.params
    }

    /// Samples a cell Vth for `state`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, state: VthState) -> f64 {
        let p = self.params[state.0 as usize];
        sample_normal(rng, p.mean, p.sigma)
    }
}

/// A Monte-Carlo simulation of one wordline: per-cell threshold voltages
/// plus the data bits that were programmed, so bit errors can be counted
/// after arbitrary Vth perturbations.
///
/// The default cell count is 8 192, matching the unit the paper reports RBER
/// in ("RBER per 8,192 flash cells", Figure 6).
#[derive(Debug, Clone)]
pub struct WordlineSim {
    tech: CellTech,
    vth: Vec<f64>,
    /// The state each cell currently nominally occupies (tracks OSR merges).
    group: Vec<VthState>,
    /// Expected bit per page type, captured at program time.
    data_bits: Vec<Vec<u8>>,
    programmed: bool,
}

/// Default cell count per simulated wordline (the paper's RBER unit).
pub const DEFAULT_CELLS_PER_WL: usize = 8_192;

impl WordlineSim {
    /// Creates an erased wordline with `n_cells` cells.
    pub fn new(tech: CellTech, n_cells: usize) -> Self {
        WordlineSim {
            tech,
            vth: vec![0.0; n_cells],
            group: vec![VthState::ERASED; n_cells],
            data_bits: vec![Vec::new(); tech.bits_per_cell() as usize],
            programmed: false,
        }
    }

    /// Creates an erased wordline with the paper's default cell count.
    pub fn with_default_cells(tech: CellTech) -> Self {
        Self::new(tech, DEFAULT_CELLS_PER_WL)
    }

    /// The cell technology.
    pub fn tech(&self) -> CellTech {
        self.tech
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.vth.len()
    }

    /// Whether the wordline has been programmed.
    pub fn is_programmed(&self) -> bool {
        self.programmed
    }

    /// Per-cell threshold voltages.
    pub fn vth(&self) -> &[f64] {
        &self.vth
    }

    /// Mutable per-cell threshold voltages (used by noise models).
    pub fn vth_mut(&mut self) -> &mut [f64] {
        &mut self.vth
    }

    /// Current nominal state group of each cell.
    pub fn groups(&self) -> &[VthState] {
        &self.group
    }

    /// Mutable state groups (used by OSR merges).
    pub fn groups_mut(&mut self) -> &mut [VthState] {
        &mut self.group
    }

    /// Programs the wordline with uniformly random data under the given
    /// distributions (one full-sequence program of all page types).
    pub fn program_random<R: Rng + ?Sized>(&mut self, rng: &mut R, dists: &StateDistributions) {
        let n_states = self.tech.n_states() as u8;
        let states: Vec<VthState> =
            (0..self.n_cells()).map(|_| VthState(rng.gen_range(0..n_states))).collect();
        self.program_states(rng, dists, &states);
    }

    /// Programs the wordline with explicit per-cell states.
    ///
    /// # Panics
    ///
    /// Panics if `states` length differs from the cell count.
    pub fn program_states<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        dists: &StateDistributions,
        states: &[VthState],
    ) {
        assert_eq!(states.len(), self.n_cells(), "state vector length mismatch");
        for (i, &s) in states.iter().enumerate() {
            self.vth[i] = dists.sample(rng, s);
            self.group[i] = s;
        }
        for &ty in self.tech.page_types() {
            let bits = states.iter().map(|&s| state_bit(self.tech, s, ty)).collect();
            self.data_bits[ty.index_in(self.tech) as usize] = bits;
        }
        self.programmed = true;
    }

    /// The data bits originally programmed on page `ty`.
    ///
    /// # Panics
    ///
    /// Panics if the wordline has not been programmed.
    pub fn expected_bits(&self, ty: PageType) -> &[u8] {
        assert!(self.programmed, "wordline not programmed");
        &self.data_bits[ty.index_in(self.tech) as usize]
    }

    /// Reads page `ty` with the nominal read-reference voltages.
    pub fn read_page(&self, ty: PageType) -> Vec<u8> {
        let refs = read_ref_voltages(self.tech, ty);
        self.read_page_with_refs(ty, &refs)
    }

    /// Reads page `ty` with explicit reference voltages.
    pub fn read_page_with_refs(&self, ty: PageType, refs: &[f64]) -> Vec<u8> {
        self.vth.iter().map(|&v| decode_bit(self.tech, ty, refs, v)).collect()
    }

    /// Number of raw bit errors on page `ty` (read vs. programmed data).
    pub fn count_errors(&self, ty: PageType) -> usize {
        let read = self.read_page(ty);
        read.iter().zip(self.expected_bits(ty)).filter(|(r, e)| r != e).count()
    }

    /// Raw bit-error rate of page `ty`.
    pub fn rber(&self, ty: PageType) -> f64 {
        self.count_errors(ty) as f64 / self.n_cells() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecc::EccModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_wordline_has_negligible_errors() {
        let mut rng = StdRng::seed_from_u64(1);
        let dists = StateDistributions::nominal(CellTech::Tlc);
        let mut wl = WordlineSim::with_default_cells(CellTech::Tlc);
        wl.program_random(&mut rng, &dists);
        let ecc = EccModel::default();
        for &ty in CellTech::Tlc.page_types() {
            let rber = wl.rber(ty);
            assert!(rber < ecc.limit_rber(), "fresh {ty} rber {rber} above ECC limit");
        }
    }

    #[test]
    fn programmed_groups_match_states() {
        let mut rng = StdRng::seed_from_u64(2);
        let dists = StateDistributions::nominal(CellTech::Mlc);
        let mut wl = WordlineSim::new(CellTech::Mlc, 64);
        let states: Vec<VthState> = (0..64).map(|i| VthState((i % 4) as u8)).collect();
        wl.program_states(&mut rng, &dists, &states);
        assert_eq!(wl.groups(), states.as_slice());
        assert!(wl.is_programmed());
    }

    #[test]
    fn expected_bits_match_gray_code() {
        let mut rng = StdRng::seed_from_u64(3);
        let dists = StateDistributions::nominal(CellTech::Tlc);
        let mut wl = WordlineSim::new(CellTech::Tlc, 8);
        let states: Vec<VthState> = (0..8).map(|i| VthState(i as u8)).collect();
        wl.program_states(&mut rng, &dists, &states);
        for &ty in CellTech::Tlc.page_types() {
            let expect: Vec<u8> = states.iter().map(|&s| state_bit(CellTech::Tlc, s, ty)).collect();
            assert_eq!(wl.expected_bits(ty), expect.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "not programmed")]
    fn expected_bits_panics_unprogrammed() {
        let wl = WordlineSim::new(CellTech::Tlc, 8);
        wl.expected_bits(PageType::Lsb);
    }

    #[test]
    fn widened_sigma_increases_rber() {
        let mut rng = StdRng::seed_from_u64(4);
        let nominal = StateDistributions::nominal(CellTech::Tlc);
        let mut wide = nominal.clone();
        for p in wide.params_mut() {
            p.sigma *= 2.5;
        }
        let mut wl_n = WordlineSim::with_default_cells(CellTech::Tlc);
        let mut wl_w = WordlineSim::with_default_cells(CellTech::Tlc);
        wl_n.program_random(&mut rng, &nominal);
        wl_w.program_random(&mut rng, &wide);
        assert!(wl_w.rber(PageType::Msb) > wl_n.rber(PageType::Msb));
    }

    #[test]
    fn sample_respects_state_means() {
        let mut rng = StdRng::seed_from_u64(5);
        let dists = StateDistributions::nominal(CellTech::Tlc);
        let mut acc = 0.0;
        let n = 10_000;
        for _ in 0..n {
            acc += dists.sample(&mut rng, VthState(7));
        }
        assert!((acc / n as f64 - 5.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "state count mismatch")]
    fn from_params_validates_length() {
        StateDistributions::from_params(CellTech::Tlc, vec![NormalParams::new(0.0, 1.0)]);
    }
}

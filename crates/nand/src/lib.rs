//! # evanesco-nand
//!
//! A 3D NAND flash memory substrate used by the [Evanesco (ASPLOS 2020)]
//! reproduction. The crate provides two fidelity layers that share one set of
//! state-encoding and timing tables:
//!
//! * a **behavioral layer** ([`chip::Chip`]) — blocks, wordlines and pages
//!   with erase-before-program and in-order-program rules, page payloads and
//!   per-operation latencies. This is what the FTL and SSD emulator drive.
//! * a **cell layer** ([`vth::WordlineSim`] and friends) — per-cell threshold
//!   voltage (Vth) distributions with program/erase physics, ISPP and one-shot
//!   programming, SBPI inhibition, program disturb, retention loss, read
//!   disturb, program/erase cycling wear, the open-interval effect, and
//!   over-programming tails. This is what the chip-characterization
//!   experiments (paper Figures 2, 6, 9–12) drive.
//!
//! The cell layer is a *statistical substitute* for the paper's 160 real
//! 48-layer 3D TLC chips: every model is calibrated against the anchor points
//! the paper reports (see `DESIGN.md` at the repository root), so the shapes
//! of the reliability figures are reproduced even though absolute volts and
//! microseconds are synthetic.
//!
//! ## Quick example
//!
//! ```rust
//! use evanesco_nand::{chip::Chip, geometry::Geometry, chip::PageData};
//!
//! # fn main() -> Result<(), evanesco_nand::NandError> {
//! let geom = Geometry::small_tlc();
//! let mut chip = Chip::new(geom);
//! let ppa = evanesco_nand::geometry::Ppa::new(0, 0);
//! chip.program(ppa, PageData::tagged(0xDEAD_BEEF))?;
//! let out = chip.read(ppa)?;
//! assert_eq!(out.data().unwrap().tag(), 0xDEAD_BEEF);
//! # Ok(())
//! # }
//! ```
//!
//! [Evanesco (ASPLOS 2020)]: https://doi.org/10.1145/3373376.3378490

pub mod cell;
pub mod chip;
pub mod ecc;
pub mod error;
pub mod geometry;
pub mod math;
pub mod noise;
pub mod osr;
pub mod rber;
pub mod snapshot;
pub mod timing;
pub mod vth;

pub use error::NandError;

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::cell::{CellTech, PageType, VthState};
    pub use crate::chip::{Chip, PageContent, PageData, PageOob, ReadOutput};
    pub use crate::ecc::EccModel;
    pub use crate::error::NandError;
    pub use crate::geometry::{BlockId, Geometry, PageId, Ppa, WordlineId};
    pub use crate::timing::{Nanos, TimingSpec};
}

//! Chip geometry and physical addressing.
//!
//! A NAND chip is organized as blocks × wordlines × pages (paper §2.1):
//! a wordline (WL) stores as many pages as bits per cell (LSB/CSB/MSB for
//! TLC), a block is the erase unit, and a page is the read/program unit.
//!
//! Page index `p` inside a block maps to wordline `p / bits_per_cell` and
//! page type `p % bits_per_cell`. Real chips interleave LSB/CSB/MSB program
//! order across neighboring wordlines to reduce interference; that ordering
//! does not affect any result reproduced here, so the simple mapping is used
//! and documented.

use crate::cell::{CellTech, PageType};
use crate::snapshot::{Dec, Enc, SnapshotError};
use std::fmt;

/// Block index within a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PB#{:#06x}", self.0)
    }
}

/// Page index within a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u32);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

/// Wordline index within a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordlineId(pub u32);

impl fmt::Display for WordlineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WL{}", self.0)
    }
}

/// Physical page address within a single chip: `(block, page)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppa {
    /// Block within the chip.
    pub block: BlockId,
    /// Page within the block.
    pub page: PageId,
}

impl Ppa {
    /// Creates a physical page address from raw indices.
    pub fn new(block: u32, page: u32) -> Self {
        Ppa { block: BlockId(block), page: PageId(page) }
    }
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.page)
    }
}

/// Location of a chip inside the SSD: `(channel, chip-on-channel)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChipLoc {
    /// Channel index.
    pub channel: u16,
    /// Chip index on that channel.
    pub chip: u16,
}

impl ChipLoc {
    /// Creates a chip location.
    pub fn new(channel: u16, chip: u16) -> Self {
        ChipLoc { channel, chip }
    }

    /// Flat index given the number of chips per channel.
    pub fn flat_index(&self, chips_per_channel: u16) -> usize {
        self.channel as usize * chips_per_channel as usize + self.chip as usize
    }
}

impl fmt::Display for ChipLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}/die{}", self.channel, self.chip)
    }
}

/// Static geometry of one NAND chip.
///
/// The paper's SecureSSD configuration (§7) uses 3D TLC chips with 428
/// blocks/chip and 576 × 16-KiB pages per block (192 wordlines); that is
/// [`Geometry::paper_tlc`]. Scaled-down variants keep the block shape but
/// reduce the block count so simulations stay tractable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Cell technology (bits per cell).
    pub tech: CellTech,
    /// Number of blocks in the chip.
    pub blocks: u32,
    /// Number of wordlines per block.
    pub wordlines_per_block: u32,
    /// Main-data page size in bytes (16 KiB in the paper).
    pub page_bytes: u32,
    /// Spare (OOB) area bytes per page (up to 1 KiB per 16-KiB page).
    pub spare_bytes: u32,
}

impl Geometry {
    /// Paper configuration: 3D TLC, 428 blocks, 192 WLs (576 pages) per
    /// block, 16-KiB pages with 1-KiB spare area.
    pub fn paper_tlc() -> Self {
        Geometry {
            tech: CellTech::Tlc,
            blocks: 428,
            wordlines_per_block: 192,
            page_bytes: 16 * 1024,
            spare_bytes: 1024,
        }
    }

    /// A scaled-down TLC geometry for fast tests: 64 blocks of 24 WLs
    /// (72 pages).
    pub fn small_tlc() -> Self {
        Geometry {
            tech: CellTech::Tlc,
            blocks: 64,
            wordlines_per_block: 24,
            page_bytes: 16 * 1024,
            spare_bytes: 1024,
        }
    }

    /// Paper block shape with a custom number of blocks (capacity scaling
    /// knob used by the system-level experiments).
    pub fn paper_tlc_with_blocks(blocks: u32) -> Self {
        Geometry { blocks, ..Self::paper_tlc() }
    }

    /// Pages per block (`wordlines × bits-per-cell`).
    pub fn pages_per_block(&self) -> u32 {
        self.wordlines_per_block * self.tech.bits_per_cell() as u32
    }

    /// Total pages in the chip.
    pub fn pages_per_chip(&self) -> u64 {
        self.blocks as u64 * self.pages_per_block() as u64
    }

    /// Chip capacity in bytes (main data area only).
    pub fn capacity_bytes(&self) -> u64 {
        self.pages_per_chip() * self.page_bytes as u64
    }

    /// Wordline and page type for a page index inside a block.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range for this geometry.
    pub fn page_to_wordline(&self, page: PageId) -> (WordlineId, PageType) {
        assert!(page.0 < self.pages_per_block(), "page {page} out of range");
        let bits = self.tech.bits_per_cell() as u32;
        let wl = WordlineId(page.0 / bits);
        let ty = PageType::from_index((page.0 % bits) as u8, self.tech);
        (wl, ty)
    }

    /// Inverse of [`Geometry::page_to_wordline`].
    pub fn wordline_to_page(&self, wl: WordlineId, ty: PageType) -> PageId {
        let bits = self.tech.bits_per_cell() as u32;
        PageId(wl.0 * bits + ty.index_in(self.tech) as u32)
    }

    /// All page indices that share a wordline with `page` (including itself).
    pub fn wordline_siblings(&self, page: PageId) -> Vec<PageId> {
        let (wl, _) = self.page_to_wordline(page);
        let bits = self.tech.bits_per_cell() as u32;
        (0..bits).map(|i| PageId(wl.0 * bits + i)).collect()
    }

    /// Whether a physical page address is valid for this geometry.
    pub fn contains(&self, ppa: Ppa) -> bool {
        ppa.block.0 < self.blocks && ppa.page.0 < self.pages_per_block()
    }

    /// Serializes the geometry into a checkpoint stream.
    pub fn encode_snapshot(&self, e: &mut Enc) {
        e.u8(match self.tech {
            CellTech::Slc => 1,
            CellTech::Mlc => 2,
            CellTech::Tlc => 3,
            CellTech::Qlc => 4,
        });
        e.u32(self.blocks);
        e.u32(self.wordlines_per_block);
        e.u32(self.page_bytes);
        e.u32(self.spare_bytes);
    }

    /// Inverse of [`Geometry::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Fails on truncation or an unknown cell-technology discriminant.
    pub fn decode_snapshot(d: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        let tech = match d.u8()? {
            1 => CellTech::Slc,
            2 => CellTech::Mlc,
            3 => CellTech::Tlc,
            4 => CellTech::Qlc,
            b => return Err(SnapshotError::Corrupt(format!("unknown cell tech {b:#04x}"))),
        };
        Ok(Geometry {
            tech,
            blocks: d.u32()?,
            wordlines_per_block: d.u32()?,
            page_bytes: d.u32()?,
            spare_bytes: d.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_section_7() {
        let g = Geometry::paper_tlc();
        assert_eq!(g.pages_per_block(), 576);
        assert_eq!(g.wordlines_per_block, 192);
        assert_eq!(g.page_bytes, 16 * 1024);
        assert_eq!(g.blocks, 428);
        // 428 blocks * 576 pages * 16 KiB ≈ 3.76 GiB per chip; 8 chips ≈ 30 GiB,
        // matching the paper's "32 GiB" emulated capacity order.
        let total_8_chips = 8 * g.capacity_bytes();
        assert!(total_8_chips > 28 * (1 << 30) && total_8_chips < 34 * (1 << 30));
    }

    #[test]
    fn page_wordline_roundtrip() {
        let g = Geometry::paper_tlc();
        for p in [0u32, 1, 2, 3, 5, 575] {
            let (wl, ty) = g.page_to_wordline(PageId(p));
            assert_eq!(g.wordline_to_page(wl, ty), PageId(p));
        }
        let (wl, ty) = g.page_to_wordline(PageId(4));
        assert_eq!(wl, WordlineId(1));
        assert_eq!(ty, PageType::Csb);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_to_wordline_rejects_out_of_range() {
        Geometry::paper_tlc().page_to_wordline(PageId(576));
    }

    #[test]
    fn wordline_siblings_share_wordline() {
        let g = Geometry::paper_tlc();
        let sib = g.wordline_siblings(PageId(10));
        assert_eq!(sib, vec![PageId(9), PageId(10), PageId(11)]);
        for s in sib {
            assert_eq!(g.page_to_wordline(s).0, g.page_to_wordline(PageId(10)).0);
        }
    }

    #[test]
    fn contains_checks_both_coordinates() {
        let g = Geometry::small_tlc();
        assert!(g.contains(Ppa::new(0, 0)));
        assert!(g.contains(Ppa::new(63, 71)));
        assert!(!g.contains(Ppa::new(64, 0)));
        assert!(!g.contains(Ppa::new(0, 72)));
    }

    #[test]
    fn chip_loc_flat_index() {
        assert_eq!(ChipLoc::new(0, 0).flat_index(4), 0);
        assert_eq!(ChipLoc::new(1, 0).flat_index(4), 4);
        assert_eq!(ChipLoc::new(1, 3).flat_index(4), 7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Ppa::new(8, 34).to_string(), "PB#0x0008:pg34");
        assert_eq!(ChipLoc::new(1, 2).to_string(), "ch1/die2");
        assert_eq!(WordlineId(3).to_string(), "WL3");
    }
}

//! Reliability noise models: program/erase wear, retention loss, read
//! disturb, program disturb, and the open-interval effect.
//!
//! All coefficients are synthetic but calibrated so that normalized RBER
//! (raw bit-error rate divided by the ECC limit) reproduces the anchor
//! points the paper reports:
//!
//! * fresh TLC pages read far below the ECC limit;
//! * at rated endurance (1 K P/E for TLC, 3 K for MLC) plus the industry
//!   1-year retention requirement, valid pages stay *just under* the limit
//!   (the JEDEC-style guarantee the paper assumes);
//! * the open-interval effect raises RBER by up to ~30 % (paper Figure 10).

use crate::cell::CellTech;
use crate::vth::StateDistributions;
use std::fmt;

/// Operating condition of a wordline or block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Condition {
    /// Program/erase cycles experienced so far.
    pub pe_cycles: u32,
    /// Retention time since programming, in days.
    pub retention_days: f64,
}

impl Condition {
    /// Fresh chip: zero cycles, zero retention.
    pub fn fresh() -> Self {
        Condition { pe_cycles: 0, retention_days: 0.0 }
    }

    /// Condition at the given P/E cycle count with zero retention.
    pub fn cycled(pe_cycles: u32) -> Self {
        Condition { pe_cycles, retention_days: 0.0 }
    }

    /// Adds a retention period to this condition.
    pub fn with_retention_days(self, days: f64) -> Self {
        Condition { retention_days: days, ..self }
    }

    /// The paper's industry-standard requirement: 1-year retention at 30 °C.
    pub fn one_year_retention(pe_cycles: u32) -> Self {
        Condition { pe_cycles, retention_days: 365.0 }
    }
}

impl Default for Condition {
    fn default() -> Self {
        Self::fresh()
    }
}

/// Sigma-widening factor from program/erase wear.
///
/// Tunnel-oxide damage accumulates with cycling and widens every state's
/// distribution; at rated endurance the factor reaches 1 + `k_pe`.
pub fn pe_sigma_factor(tech: CellTech, pe_cycles: u32) -> f64 {
    let k_pe = match tech {
        CellTech::Slc => 0.10,
        CellTech::Mlc => 0.30,
        CellTech::Tlc => 0.20,
        CellTech::Qlc => 0.35,
    };
    1.0 + k_pe * pe_cycles as f64 / tech.rated_pe_cycles() as f64
}

/// Additional sigma-widening factor from retention (charge detrapping).
///
/// Grows with `log10(1 + days)` and is amplified by wear.
pub fn retention_sigma_factor(tech: CellTech, cond: Condition) -> f64 {
    let k_ret = match tech {
        CellTech::Slc => 0.008,
        CellTech::Mlc => 0.017,
        CellTech::Tlc => 0.014,
        CellTech::Qlc => 0.050,
    };
    let wear = 1.0 + cond.pe_cycles as f64 / tech.rated_pe_cycles() as f64;
    1.0 + k_ret * (1.0 + cond.retention_days).log10() * wear
}

/// Mean Vth downshift (volts, non-negative) of a programmed state due to
/// charge loss over retention. Higher states lose more charge.
///
/// `state_frac` is `state_index / (n_states - 1)` in `[0, 1]`.
pub fn retention_mean_shift(tech: CellTech, cond: Condition, state_frac: f64) -> f64 {
    let wear = 1.0 + 0.3 * cond.pe_cycles as f64 / tech.rated_pe_cycles() as f64;
    0.015 * state_frac * (1.0 + cond.retention_days).log10() * wear
}

/// Per-read Vth upshift (volts) experienced by unselected wordlines in the
/// same block (read disturb, paper §2.1 references). The effect is tiny per
/// read and only matters after millions of reads.
pub fn read_disturb_shift(reads: u64) -> f64 {
    2.0e-8 * reads as f64
}

/// Applies wear + retention adjustments to nominal state distributions.
pub fn adjusted_states(tech: CellTech, cond: Condition) -> StateDistributions {
    let mut dists = StateDistributions::nominal(tech);
    let n = dists.params().len();
    let widen = pe_sigma_factor(tech, cond.pe_cycles) * retention_sigma_factor(tech, cond);
    for (i, p) in dists.params_mut().iter_mut().enumerate() {
        p.sigma *= widen;
        if i > 0 {
            let frac = i as f64 / (n - 1) as f64;
            p.mean -= retention_mean_shift(tech, cond, frac);
        }
    }
    dists
}

/// Ages a programmed wordline in place: every cell loses charge according
/// to its current state group (higher states lose more) and gains
/// detrapping noise, such that a population programmed under `Condition
/// { pe, 0 }` and aged by `days` matches the analytic
/// [`adjusted_states`] distribution for `Condition { pe, days }`.
///
/// This is the Monte-Carlo path for *program-then-age* experiments
/// (Figure 6's retention rows), where the perturbation being studied (e.g.
/// OSR) happens between programming and aging.
pub fn age_wordline<R: rand::Rng + ?Sized>(
    rng: &mut R,
    wl: &mut crate::vth::WordlineSim,
    pe_cycles: u32,
    days: f64,
) {
    use crate::math::sample_normal;
    let tech = wl.tech();
    let n = tech.n_states();
    let cond = Condition { pe_cycles, retention_days: days };
    let base_sigma: Vec<f64> = crate::cell::nominal_states(tech)
        .iter()
        .map(|&(_, s)| s * pe_sigma_factor(tech, pe_cycles))
        .collect();
    let ret_f = retention_sigma_factor(tech, cond);
    // Independent additive noise that widens sigma0 to sigma0 * ret_f.
    let noise_scale = (ret_f * ret_f - 1.0).max(0.0).sqrt();
    let groups = wl.groups().to_vec();
    for (i, group) in groups.iter().enumerate() {
        let frac = if n > 1 { group.0 as f64 / (n - 1) as f64 } else { 0.0 };
        let shift = if group.is_erased() { 0.0 } else { retention_mean_shift(tech, cond, frac) };
        let sigma_n = base_sigma[group.0 as usize] * noise_scale;
        wl.vth_mut()[i] += sample_normal(rng, -shift, sigma_n);
    }
}

/// Open-interval length classes (paper Figure 10 x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpenInterval {
    /// Block programmed immediately after erase.
    Zero,
    /// Up to ~1 hour open.
    VeryShort,
    /// Up to ~1 day open.
    Short,
    /// Up to ~1 week open.
    Medium,
    /// Up to ~1 month open.
    Long,
    /// More than a month open.
    VeryLong,
}

impl OpenInterval {
    /// All classes, in increasing length order.
    pub const ALL: [OpenInterval; 6] = [
        OpenInterval::Zero,
        OpenInterval::VeryShort,
        OpenInterval::Short,
        OpenInterval::Medium,
        OpenInterval::Long,
        OpenInterval::VeryLong,
    ];

    /// Classifies an erase-to-program gap given in hours.
    pub fn from_hours(hours: f64) -> Self {
        if hours <= 0.0 {
            OpenInterval::Zero
        } else if hours <= 1.0 {
            OpenInterval::VeryShort
        } else if hours <= 24.0 {
            OpenInterval::Short
        } else if hours <= 24.0 * 7.0 {
            OpenInterval::Medium
        } else if hours <= 24.0 * 30.0 {
            OpenInterval::Long
        } else {
            OpenInterval::VeryLong
        }
    }

    /// Ordinal index (0 = zero interval).
    pub fn index(&self) -> usize {
        Self::ALL.iter().position(|c| c == self).expect("class in ALL")
    }

    /// Multiplicative RBER factor for data programmed into a block that
    /// stayed open (erased but unprogrammed) for this long.
    ///
    /// Calibrated to Figure 10: up to ~30 % RBER increase at the longest
    /// interval, slightly steeper after cycling and after cycling+retention.
    pub fn rber_factor(&self, cond: Condition) -> f64 {
        let base = [1.0, 1.05, 1.12, 1.18, 1.24, 1.30][self.index()];
        let cycled = cond.pe_cycles > 0;
        let retained = cond.retention_days > 0.0;
        let extra = match (cycled, retained) {
            (false, _) => 0.0,
            (true, false) => 0.015,
            (true, true) => 0.03,
        };
        if self.index() == 0 {
            1.0
        } else {
            base + extra * self.index() as f64 / 5.0
        }
    }
}

impl fmt::Display for OpenInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpenInterval::Zero => "zero",
            OpenInterval::VeryShort => "very short",
            OpenInterval::Short => "short",
            OpenInterval::Medium => "medium",
            OpenInterval::Long => "long",
            OpenInterval::VeryLong => "very long",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::PageType;
    use crate::ecc::EccModel;
    use crate::rber::page_rber;

    #[test]
    fn wear_widens_sigma_monotonically() {
        for tech in [CellTech::Mlc, CellTech::Tlc] {
            let mut prev = 0.0;
            for pe in [0u32, 250, 500, 1000, 3000] {
                let f = pe_sigma_factor(tech, pe);
                assert!(f >= 1.0 && f > prev);
                prev = f;
            }
        }
    }

    #[test]
    fn retention_shift_increases_with_state_and_time() {
        let c1 = Condition::one_year_retention(1000);
        assert!(
            retention_mean_shift(CellTech::Tlc, c1, 1.0)
                > retention_mean_shift(CellTech::Tlc, c1, 0.2)
        );
        let c_short = Condition::cycled(1000).with_retention_days(1.0);
        assert!(
            retention_mean_shift(CellTech::Tlc, c1, 1.0)
                > retention_mean_shift(CellTech::Tlc, c_short, 1.0)
        );
    }

    #[test]
    fn tlc_meets_one_year_retention_at_rated_endurance() {
        // JEDEC-style guarantee the paper assumes: worst-case valid data is
        // still correctable at rated P/E + 1-year retention.
        let ecc = EccModel::default();
        let cond = Condition::one_year_retention(1000);
        let dists = adjusted_states(CellTech::Tlc, cond);
        for &ty in CellTech::Tlc.page_types() {
            let r = page_rber(&dists, ty) / ecc.limit_rber();
            assert!(r < 1.0, "{ty} normalized rber {r} exceeds ECC limit");
            assert!(r > 0.2, "{ty} normalized rber {r} suspiciously low for worst case");
        }
    }

    #[test]
    fn mlc_meets_one_year_retention_at_rated_endurance() {
        let ecc = EccModel::default();
        let cond = Condition::one_year_retention(3000);
        let dists = adjusted_states(CellTech::Mlc, cond);
        let r = page_rber(&dists, PageType::Msb) / ecc.limit_rber();
        assert!(r < 1.0, "MLC MSB normalized rber {r} exceeds ECC limit");
        assert!(r > 0.15, "MLC MSB normalized rber {r} too low");
    }

    #[test]
    fn five_year_retention_exceeds_guarantee_budget() {
        // The 5-year requirement is the stretch case in the paper's DSE; data
        // cells are close to (or beyond) the limit there.
        let ecc = EccModel::default();
        let cond = Condition::cycled(1000).with_retention_days(5.0 * 365.0);
        let dists = adjusted_states(CellTech::Tlc, cond);
        let r = crate::rber::worst_page_rber(&dists) / ecc.limit_rber();
        assert!(r > 0.85, "5-year normalized rber {r} should approach the limit");
    }

    #[test]
    fn open_interval_factor_shape_matches_figure_10() {
        let fresh = Condition::fresh();
        let cycled = Condition::cycled(1000);
        let cycled_ret = Condition::one_year_retention(1000);
        let mut prev = 0.0;
        for class in OpenInterval::ALL {
            let f = class.rber_factor(fresh);
            assert!(f > prev, "factor must increase with interval length");
            prev = f;
            // Ordering of the three curves.
            assert!(class.rber_factor(cycled) >= f);
            assert!(class.rber_factor(cycled_ret) >= class.rber_factor(cycled));
        }
        // Up to ~30% increase at the longest interval (paper: "30% larger").
        let worst = OpenInterval::VeryLong.rber_factor(cycled_ret);
        assert!((1.28..=1.40).contains(&worst), "worst factor {worst}");
        assert_eq!(OpenInterval::Zero.rber_factor(cycled_ret), 1.0);
    }

    #[test]
    fn open_interval_classification() {
        assert_eq!(OpenInterval::from_hours(0.0), OpenInterval::Zero);
        assert_eq!(OpenInterval::from_hours(0.5), OpenInterval::VeryShort);
        assert_eq!(OpenInterval::from_hours(10.0), OpenInterval::Short);
        assert_eq!(OpenInterval::from_hours(100.0), OpenInterval::Medium);
        assert_eq!(OpenInterval::from_hours(500.0), OpenInterval::Long);
        assert_eq!(OpenInterval::from_hours(5000.0), OpenInterval::VeryLong);
        assert_eq!(OpenInterval::from_hours(5000.0).to_string(), "very long");
    }

    #[test]
    fn aged_wordline_matches_analytic_distribution() {
        // Program-then-age must land on the same RBER as programming
        // directly from the retention-adjusted distributions.
        use crate::vth::WordlineSim;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(31);
        let pe = 1000;
        let days = 365.0;
        let analytic = page_rber(
            &adjusted_states(CellTech::Tlc, Condition { pe_cycles: pe, retention_days: days }),
            PageType::Csb,
        );
        let trials = 30;
        let mut total = 0usize;
        let mut cells = 0usize;
        for _ in 0..trials {
            let mut wl = WordlineSim::with_default_cells(CellTech::Tlc);
            wl.program_random(&mut rng, &adjusted_states(CellTech::Tlc, Condition::cycled(pe)));
            age_wordline(&mut rng, &mut wl, pe, days);
            total += wl.count_errors(PageType::Csb);
            cells += wl.n_cells();
        }
        let mc = total as f64 / cells as f64;
        let rel = (mc - analytic).abs() / analytic;
        assert!(rel < 0.2, "program-then-age {mc} vs analytic {analytic} (rel {rel})");
    }

    #[test]
    fn aging_erased_cells_does_not_shift_them() {
        use crate::vth::WordlineSim;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(32);
        let dists = adjusted_states(CellTech::Tlc, Condition::fresh());
        let mut wl = WordlineSim::new(CellTech::Tlc, 4096);
        let states = vec![crate::cell::VthState::ERASED; 4096];
        wl.program_states(&mut rng, &dists, &states);
        let mean_before: f64 = wl.vth().iter().sum::<f64>() / 4096.0;
        age_wordline(&mut rng, &mut wl, 1000, 365.0);
        let mean_after: f64 = wl.vth().iter().sum::<f64>() / 4096.0;
        // No systematic charge loss for erased cells (they hold no charge).
        assert!((mean_after - mean_before).abs() < 0.05);
    }

    #[test]
    fn read_disturb_is_negligible_until_many_reads() {
        assert!(read_disturb_shift(1_000) < 1e-4);
        assert!(read_disturb_shift(10_000_000) > 0.1);
    }

    #[test]
    fn condition_constructors() {
        assert_eq!(Condition::default(), Condition::fresh());
        let c = Condition::cycled(500).with_retention_days(10.0);
        assert_eq!(c.pe_cycles, 500);
        assert_eq!(c.retention_days, 10.0);
        assert_eq!(Condition::one_year_retention(100).retention_days, 365.0);
    }
}

//! One-shot reprogramming (OSR) — the reprogram-based sanitization baseline
//! the paper analyzes and rejects (§4, Figures 5 and 6).
//!
//! OSR destroys one page of a wordline without copying the other pages: it
//! one-shot programs every cell whose bit on the sanitized page is `1`
//! upward until it merges with the neighboring state, making the page's
//! read references useless. The hazard is **over-programming**: the shifted
//! cells land in a wide, poorly controlled distribution whose upper tail
//! crosses the *other* pages' read boundaries, corrupting valid data — and
//! per-wordline process variation means the shift cannot be tuned per-WL.

use crate::cell::{read_boundaries, state_bit, CellTech, PageType, VthState};
use crate::math::sample_normal;
use crate::noise::{adjusted_states, Condition};
use crate::vth::WordlineSim;
use rand::Rng;

/// Parameters of the one-shot reprogram pulse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsrParams {
    /// Per-cell sigma of the one-shot landing distribution (volts). One-shot
    /// programming skips ISPP verify loops, so this is much wider than a
    /// normal program (~0.115 V).
    pub sigma_oneshot: f64,
    /// Per-wordline process-variation sigma of the landing mean (volts).
    /// The paper's §4 argument: this variation is why OSR parameters cannot
    /// be tuned per wordline.
    pub wl_bias_sigma: f64,
}

impl Default for OsrParams {
    fn default() -> Self {
        // Calibrated so that, for MLC at 3K P/E, ~7.4% of MSB pages exceed
        // the ECC limit right after sanitizing the LSB page (paper Fig. 6a).
        OsrParams { sigma_oneshot: 0.30, wl_bias_sigma: 0.06 }
    }
}

/// Outcome of sanitizing one page of a simulated wordline with OSR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsrOutcome {
    /// RBER of the sanitized page after the operation (should be massive —
    /// that is the point of sanitization).
    pub sanitized_page_rber: f64,
    /// The per-wordline bias that was drawn for this pulse.
    pub wl_bias: f64,
}

/// Applies OSR to destroy page `ty` of the wordline.
///
/// Every cell whose current state group encodes bit `1` on page `ty` is
/// shifted up to the next state across its read boundary; the shift is
/// sampled from `N(next-state mean + wl_bias, sigma_oneshot)` and only moves
/// cells upward (programming cannot lower Vth).
///
/// `cond` selects the state distributions used to locate the merge targets.
///
/// # Panics
///
/// Panics if the wordline was never programmed.
pub fn sanitize_page<R: Rng + ?Sized>(
    rng: &mut R,
    wl: &mut WordlineSim,
    ty: PageType,
    cond: Condition,
    params: &OsrParams,
) -> OsrOutcome {
    assert!(wl.is_programmed(), "cannot OSR an unprogrammed wordline");
    let tech = wl.tech();
    let dists = adjusted_states(tech, cond);
    let wl_bias = sample_normal(rng, 0.0, params.wl_bias_sigma);
    let boundaries = read_boundaries(tech, ty);
    let n_states = tech.n_states() as u8;

    for i in 0..wl.n_cells() {
        let group = wl.groups()[i];
        if state_bit(tech, group, ty) != 1 {
            continue;
        }
        // Merge target: the next state upward (capped at the top state —
        // top-state cells get pushed beyond the design limit, the worst
        // over-programming case).
        let target = VthState((group.0 + 1).min(n_states - 1));
        let target_mean = if target == group {
            // Already at the top: push past the design limit.
            dists.params()[group.0 as usize].mean + 0.7
        } else {
            dists.params()[target.0 as usize].mean
        };
        let new_vth = sample_normal(rng, target_mean + wl_bias, params.sigma_oneshot);
        let v = &mut wl.vth_mut()[i];
        if new_vth > *v {
            *v = new_vth;
        }
        if target != group {
            wl.groups_mut()[i] = target;
        }
    }
    let _ = &boundaries;
    OsrOutcome { sanitized_page_rber: wl.rber(ty), wl_bias }
}

/// Convenience: program a random wordline at `cond.pe_cycles`, sanitize
/// the given pages with OSR, **then** age the wordline by
/// `cond.retention_days` (program → OSR → retention, the order of the
/// paper's Figure 6 experiment). Returns the final RBER of `victim_page`
/// (a page that was *supposed to stay valid*).
pub fn osr_experiment<R: Rng + ?Sized>(
    rng: &mut R,
    tech: CellTech,
    cond: Condition,
    sanitize: &[PageType],
    victim_page: PageType,
    params: &OsrParams,
) -> f64 {
    let program_cond = Condition::cycled(cond.pe_cycles);
    let dists = adjusted_states(tech, program_cond);
    let mut wl = WordlineSim::with_default_cells(tech);
    wl.program_random(rng, &dists);
    for &ty in sanitize {
        sanitize_page(rng, &mut wl, ty, program_cond, params);
    }
    if cond.retention_days > 0.0 {
        crate::noise::age_wordline(rng, &mut wl, cond.pe_cycles, cond.retention_days);
    }
    wl.rber(victim_page)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecc::EccModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn osr_destroys_the_sanitized_page() {
        let mut rng = StdRng::seed_from_u64(11);
        let cond = Condition::cycled(1000);
        let dists = adjusted_states(CellTech::Tlc, cond);
        let mut wl = WordlineSim::with_default_cells(CellTech::Tlc);
        wl.program_random(&mut rng, &dists);
        let out = sanitize_page(&mut rng, &mut wl, PageType::Lsb, cond, &OsrParams::default());
        let ecc = EccModel::default();
        // The sanitized page must be far beyond correctable: its content is
        // gone (merged distributions make former-E cells indistinguishable
        // from P1 cells).
        assert!(
            out.sanitized_page_rber > 10.0 * ecc.limit_rber(),
            "sanitized page rber {}",
            out.sanitized_page_rber
        );
    }

    #[test]
    fn mlc_msb_survives_sometimes_fails_sometimes() {
        // Paper Fig. 6a: right after OSR of the LSB page, ~7.4% of MSB pages
        // exceed the ECC limit. Check the failure fraction is "a few percent".
        let mut rng = StdRng::seed_from_u64(12);
        let ecc = EccModel::default();
        let cond = Condition::cycled(3000);
        let trials = 400;
        let mut failures = 0;
        for _ in 0..trials {
            let rber = osr_experiment(
                &mut rng,
                CellTech::Mlc,
                cond,
                &[PageType::Lsb],
                PageType::Msb,
                &OsrParams::default(),
            );
            if !ecc.correctable(rber) {
                failures += 1;
            }
        }
        let frac = failures as f64 / trials as f64;
        assert!(
            (0.02..=0.20).contains(&frac),
            "MLC MSB failure fraction {frac} out of Fig-6a band"
        );
    }

    #[test]
    fn tlc_msb_unreadable_after_lsb_and_csb_sanitize() {
        // Paper Fig. 6b: sanitizing LSB then CSB makes *all* MSB pages
        // unreadable.
        let mut rng = StdRng::seed_from_u64(13);
        let ecc = EccModel::default();
        let cond = Condition::cycled(1000);
        for _ in 0..50 {
            let rber = osr_experiment(
                &mut rng,
                CellTech::Tlc,
                cond,
                &[PageType::Lsb, PageType::Csb],
                PageType::Msb,
                &OsrParams::default(),
            );
            assert!(!ecc.correctable(rber), "TLC MSB survived OSR with rber {rber}");
        }
    }

    #[test]
    fn most_mlc_msb_pages_fail_after_osr_plus_retention() {
        // Paper Fig. 6a rightmost box: with the 1-year requirement, most MLC
        // MSB pages cannot be reliably read, with values over 1.5x the limit.
        let mut rng = StdRng::seed_from_u64(17);
        let ecc = EccModel::default();
        let cond = Condition::one_year_retention(3000);
        let trials = 150;
        let mut failures = 0;
        let mut max_norm: f64 = 0.0;
        for _ in 0..trials {
            let rber = osr_experiment(
                &mut rng,
                CellTech::Mlc,
                cond,
                &[PageType::Lsb],
                PageType::Msb,
                &OsrParams::default(),
            );
            if !ecc.correctable(rber) {
                failures += 1;
            }
            max_norm = max_norm.max(ecc.normalize(rber));
        }
        let frac = failures as f64 / trials as f64;
        assert!(frac > 0.5, "only {frac} of MSB pages failed after retention");
        assert!(max_norm > 1.5, "worst page only {max_norm}x the limit");
    }

    #[test]
    fn retention_after_osr_makes_mlc_msb_worse() {
        let mut rng = StdRng::seed_from_u64(14);
        let fresh = Condition::cycled(3000);
        let retained = Condition::one_year_retention(3000);
        let n = 60;
        let mean_of = |rng: &mut StdRng, cond| {
            let mut acc = 0.0;
            for _ in 0..n {
                acc += osr_experiment(
                    rng,
                    CellTech::Mlc,
                    cond,
                    &[PageType::Lsb],
                    PageType::Msb,
                    &OsrParams::default(),
                );
            }
            acc / n as f64
        };
        let r_fresh = mean_of(&mut rng, fresh);
        let r_ret = mean_of(&mut rng, retained);
        assert!(r_ret > r_fresh, "retention should worsen RBER: {r_ret} vs {r_fresh}");
    }

    #[test]
    fn osr_never_lowers_vth() {
        let mut rng = StdRng::seed_from_u64(15);
        let cond = Condition::fresh();
        let dists = adjusted_states(CellTech::Tlc, cond);
        let mut wl = WordlineSim::new(CellTech::Tlc, 2048);
        wl.program_random(&mut rng, &dists);
        let before = wl.vth().to_vec();
        sanitize_page(&mut rng, &mut wl, PageType::Lsb, cond, &OsrParams::default());
        for (b, a) in before.iter().zip(wl.vth()) {
            assert!(a >= b, "OSR lowered a cell Vth: {b} -> {a}");
        }
    }

    #[test]
    #[should_panic(expected = "unprogrammed")]
    fn osr_requires_programmed_wordline() {
        let mut rng = StdRng::seed_from_u64(16);
        let mut wl = WordlineSim::new(CellTech::Tlc, 128);
        sanitize_page(&mut rng, &mut wl, PageType::Lsb, Condition::fresh(), &OsrParams::default());
    }
}

//! Error-correcting-code model.
//!
//! Modern SSD controllers protect each page with a BCH/LDPC code that can
//! correct a bounded number of raw bit errors per codeword. All reliability
//! figures in the paper are normalized to the **ECC limit**: the maximum RBER
//! below which the code still corrects every codeword. A normalized RBER of
//! 1.0 therefore means "right at the edge of readability".

/// A hard-decision block-code ECC model: `t` correctable bits per codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccModel {
    /// Correctable bit errors per codeword.
    pub t_bits: u32,
    /// Codeword payload size in bytes.
    pub codeword_bytes: u32,
}

impl EccModel {
    /// A typical TLC-era configuration: 72 correctable bits per 1-KiB
    /// codeword, giving an ECC-limit RBER of ~8.8e-3.
    pub fn new() -> Self {
        EccModel { t_bits: 72, codeword_bytes: 1024 }
    }

    /// Maximum raw bit-error rate at which every codeword is still
    /// correctable (`t / codeword bits`).
    pub fn limit_rber(&self) -> f64 {
        self.t_bits as f64 / (self.codeword_bytes as f64 * 8.0)
    }

    /// Whether a page at the given RBER is reliably readable.
    pub fn correctable(&self, rber: f64) -> bool {
        rber <= self.limit_rber()
    }

    /// Normalizes an RBER to the ECC limit (the paper's reporting unit).
    pub fn normalize(&self, rber: f64) -> f64 {
        rber / self.limit_rber()
    }

    /// Whether a specific codeword with `n_errors` raw errors decodes.
    pub fn decode_ok(&self, n_errors: u32) -> bool {
        n_errors <= self.t_bits
    }
}

impl Default for EccModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_rber_matches_t_over_bits() {
        let ecc = EccModel::default();
        let expect = 72.0 / (1024.0 * 8.0);
        assert!((ecc.limit_rber() - expect).abs() < 1e-12);
        assert!((ecc.limit_rber() - 8.79e-3).abs() < 1e-4);
    }

    #[test]
    fn correctable_boundary() {
        let ecc = EccModel::default();
        assert!(ecc.correctable(ecc.limit_rber()));
        assert!(ecc.correctable(0.0));
        assert!(!ecc.correctable(ecc.limit_rber() * 1.01));
    }

    #[test]
    fn normalize_is_identity_at_limit() {
        let ecc = EccModel::default();
        assert!((ecc.normalize(ecc.limit_rber()) - 1.0).abs() < 1e-12);
        assert_eq!(ecc.normalize(0.0), 0.0);
    }

    #[test]
    fn decode_ok_counts_bits() {
        let ecc = EccModel::default();
        assert!(ecc.decode_ok(0));
        assert!(ecc.decode_ok(72));
        assert!(!ecc.decode_ok(73));
    }
}

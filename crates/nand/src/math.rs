//! Small numerical helpers: error function, Gaussian tail probabilities and
//! Box–Muller normal sampling.
//!
//! Implemented in-crate (rather than pulling `libm`/`rand_distr`) to keep the
//! dependency set to the approved list; accuracy of the Abramowitz–Stegun
//! `erf` approximation (~1.5e-7 absolute) is far below the tolerances of any
//! calibration in this repository.

use rand::Rng;

/// Error function approximation (Abramowitz & Stegun 7.1.26).
///
/// Maximum absolute error ≈ 1.5e-7.
///
/// ```rust
/// let e = evanesco_nand::math::erf(1.0);
/// assert!((e - 0.8427007).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;

    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal cumulative distribution function Φ(x).
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Gaussian upper-tail probability Q(x) = 1 − Φ(x).
pub fn q(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Probability that a `N(mean, sigma)` sample exceeds `threshold`.
pub fn prob_above(mean: f64, sigma: f64, threshold: f64) -> f64 {
    if sigma <= 0.0 {
        return if mean > threshold { 1.0 } else { 0.0 };
    }
    q((threshold - mean) / sigma)
}

/// Probability that a `N(mean, sigma)` sample is below `threshold`.
pub fn prob_below(mean: f64, sigma: f64, threshold: f64) -> f64 {
    1.0 - prob_above(mean, sigma, threshold)
}

/// Draws one standard-normal sample using the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a `N(mean, sigma)` sample.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    mean + sigma * sample_standard_normal(rng)
}

/// Simple percentile over a copied, sorted slice. `p` in `[0, 100]`.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let idx = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[idx.min(v.len() - 1)]
}

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Maximum over a slice of floats. Returns 0.0 for an empty slice.
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::MIN, f64::max).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
    }

    #[test]
    fn phi_symmetry_and_bounds() {
        for x in [-3.0, -1.0, 0.0, 0.5, 2.5] {
            let p = phi(x);
            assert!((0.0..=1.0).contains(&p));
            // Tolerance bounded by the erf approximation error (~1.5e-7).
            assert!((phi(x) + phi(-x) - 1.0).abs() < 1e-6);
        }
        assert!((phi(0.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn q_matches_one_minus_phi() {
        for x in [-2.0, 0.0, 1.3, 4.0] {
            assert!((q(x) - (1.0 - phi(x))).abs() < 1e-9);
        }
    }

    #[test]
    fn prob_above_degenerate_sigma() {
        assert_eq!(prob_above(2.0, 0.0, 1.0), 1.0);
        assert_eq!(prob_above(0.5, 0.0, 1.0), 0.0);
    }

    #[test]
    fn normal_sampling_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 3.0, 0.5)).collect();
        let m = mean(&samples);
        let var = samples.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / n as f64;
        assert!((m - 3.0).abs() < 0.01, "mean {m}");
        assert!((var.sqrt() - 0.5).abs() < 0.01, "sigma {}", var.sqrt());
    }

    #[test]
    fn percentile_and_max() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(max(&v), 5.0);
        assert_eq!(max(&[]), 0.0);
    }

    #[test]
    fn prob_above_below_sum_to_one() {
        let p = prob_above(1.0, 0.3, 1.4) + prob_below(1.0, 0.3, 1.4);
        assert!((p - 1.0).abs() < 1e-12);
    }
}

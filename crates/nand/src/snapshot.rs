//! Binary snapshot codec shared by every crate that participates in
//! device-state checkpointing.
//!
//! The format is deliberately simple and fully explicit:
//!
//! * little-endian fixed-width integers (`usize` travels as `u64`),
//! * `f64` as its IEEE-754 bit pattern (`to_bits`/`from_bits`), so floats
//!   round-trip bit-exactly,
//! * `Option<T>` as a one-byte presence tag followed by the payload,
//! * byte strings and UTF-8 strings as a `u64` length prefix plus bytes,
//! * one-byte **section tags** ([`Enc::tag`]/[`Dec::expect_tag`]) bracketing
//!   each logical state region, so a decoder that drifts out of sync fails
//!   immediately with a named section instead of silently misreading.
//!
//! Checkpoint files start with [`MAGIC`] and a `u32` format [`VERSION`];
//! loading anything else fails with a descriptive [`SnapshotError`] — never
//! a panic. Every component owning private state implements its own
//! `encode_state`/`decode_state` against [`Enc`]/[`Dec`] in its defining
//! module, keeping field privacy intact.

use std::error::Error;
use std::fmt;

/// File magic for Evanesco checkpoint snapshots (`EVSC` + format epoch).
pub const MAGIC: &[u8; 8] = b"EVSCCKP1";

/// Current snapshot format version. Bump on any incompatible layout change.
///
/// Version history:
///
/// * **1** — flat stream of component sections behind one header.
/// * **2** — the top-level checkpoint is framed into CRC-guarded sections
///   (`[id:u8][len:u64][crc32:u32][payload]`, see [`Enc::section`]), so a
///   corrupted region is pinned to a named section and can be salvaged
///   instead of poisoning the whole blob. Version-1 blobs still decode.
pub const VERSION: u32 = 2;

/// Oldest snapshot format version this build still decodes.
pub const MIN_VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the checksum guarding
/// each framed checkpoint section. Detects every single-byte corruption
/// and all burst errors up to 32 bits.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Errors surfaced while decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the expected data.
    Truncated {
        /// Byte offset at which more data was needed.
        offset: usize,
        /// Bytes the decoder tried to read there.
        needed: usize,
    },
    /// The stream does not start with the checkpoint magic.
    BadMagic,
    /// The stream's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the stream.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// Structurally invalid content (bad tag byte, bad enum discriminant,
    /// out-of-sync section marker, …).
    Corrupt(String),
    /// The snapshot is well-formed but describes a device incompatible with
    /// the state being restored into (geometry/config mismatch).
    Mismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { offset, needed } => {
                write!(f, "snapshot truncated: needed {needed} byte(s) at offset {offset}")
            }
            SnapshotError::BadMagic => {
                write!(f, "not an Evanesco checkpoint (bad magic; expected {MAGIC:?})")
            }
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (this build supports {supported})"
                )
            }
            SnapshotError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            SnapshotError::Mismatch(msg) => write!(f, "checkpoint/device mismatch: {msg}"),
        }
    }
}

impl Error for SnapshotError {}

/// Snapshot encoder: an append-only byte buffer with typed writers.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh encoder holding the magic + version header.
    pub fn with_header() -> Self {
        let mut e = Enc::default();
        e.buf.extend_from_slice(MAGIC);
        e.u32(VERSION);
        e
    }

    /// A fresh encoder with no header (for nested component sections).
    pub fn new() -> Self {
        Enc::default()
    }

    /// Consumes the encoder, yielding the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a one-byte section tag.
    pub fn tag(&mut self, t: u8) {
        self.buf.push(t);
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u16` little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (portable across word sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes an `Option` as a presence byte plus payload.
    pub fn opt<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }

    /// Writes one CRC-guarded checkpoint section: `payload` is encoded
    /// into its own buffer, then framed as `[id][len:u64][crc32][bytes]`.
    /// The frame lets a decoder skip a section whose checksum fails and
    /// keep reading the next one (the salvage path), while the CRC pins
    /// any corruption to the section it landed in.
    pub fn section(&mut self, id: u8, payload: impl FnOnce(&mut Enc)) {
        let mut inner = Enc::new();
        payload(&mut inner);
        let bytes = inner.into_bytes();
        self.u8(id);
        self.u64(bytes.len() as u64);
        self.u32(crc32(&bytes));
        self.buf.extend_from_slice(&bytes);
    }
}

/// Snapshot decoder over a borrowed byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    version: u32,
}

impl<'a> Dec<'a> {
    /// A decoder that first checks the magic + version header. Any version
    /// in `MIN_VERSION..=VERSION` is accepted; component decoders branch on
    /// [`Dec::version`] where layouts differ.
    pub fn with_header(buf: &'a [u8]) -> Result<Self, SnapshotError> {
        let mut d = Dec { buf, pos: 0, version: VERSION };
        let magic = d.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = d.u32()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion { found: version, supported: VERSION });
        }
        d.version = version;
        Ok(d)
    }

    /// A headerless decoder (for nested component sections). Assumes the
    /// current format version.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0, version: VERSION }
    }

    /// The format version accepted by [`Dec::with_header`] (or [`VERSION`]
    /// for a headerless decoder).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Current read offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Fails unless the stream is fully consumed (guards against trailing
    /// garbage / decoder drift).
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!(
                "{} trailing byte(s) after snapshot at offset {}",
                self.buf.len() - self.pos,
                self.pos
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return Err(SnapshotError::Truncated { offset: self.pos, needed: n });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads and checks a one-byte section tag.
    pub fn expect_tag(&mut self, t: u8, section: &str) -> Result<(), SnapshotError> {
        let got = self.u8()?;
        if got != t {
            return Err(SnapshotError::Corrupt(format!(
                "expected section '{section}' (tag {t:#04x}) at offset {}, found {got:#04x}",
                self.pos - 1
            )));
        }
        Ok(())
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`, rejecting anything but 0/1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!(
                "invalid bool byte {b:#04x} at offset {}",
                self.pos - 1
            ))),
        }
    }

    /// Reads a `u16` little-endian.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len checked")))
    }

    /// Reads a `u32` little-endian.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len checked")))
    }

    /// Reads a `u64` little-endian.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len checked")))
    }

    /// Reads a `usize` stored as `u64`, rejecting values over the platform
    /// word size.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| {
            SnapshotError::Corrupt(format!("usize value {v} exceeds platform word size"))
        })
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let at = self.pos;
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| SnapshotError::Corrupt(format!("invalid UTF-8 string at offset {at}")))
    }

    /// Reads an `Option` written by [`Enc::opt`].
    pub fn opt<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, SnapshotError>,
    ) -> Result<Option<T>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            b => Err(SnapshotError::Corrupt(format!(
                "invalid Option tag {b:#04x} at offset {}",
                self.pos - 1
            ))),
        }
    }

    /// Reads one section frame written by [`Enc::section`] without
    /// enforcing the checksum: returns a sub-decoder over the payload and
    /// whether its CRC matched. The stream is advanced past the section
    /// either way, so a caller may skip a damaged section and keep
    /// decoding (the salvage path). Frame-level damage (wrong id, a
    /// length running past the buffer) is unrecoverable and errors.
    pub fn section_frame(&mut self, id: u8, name: &str) -> Result<(Dec<'a>, bool), SnapshotError> {
        let got = self.u8()?;
        if got != id {
            return Err(SnapshotError::Corrupt(format!(
                "expected checkpoint section '{name}' (id {id:#04x}) at offset {}, \
                 found {got:#04x}",
                self.pos - 1
            )));
        }
        let len = self.usize()?;
        let crc = self.u32()?;
        let payload = self.take(len)?;
        let ok = crc32(payload) == crc;
        Ok((Dec { buf: payload, pos: 0, version: self.version }, ok))
    }

    /// Reads one section frame and enforces its checksum: the strict
    /// counterpart of [`Dec::section_frame`], failing with an error that
    /// names the damaged section.
    pub fn section(&mut self, id: u8, name: &str) -> Result<Dec<'a>, SnapshotError> {
        let (payload, ok) = self.section_frame(id, name)?;
        if !ok {
            return Err(SnapshotError::Corrupt(format!(
                "checkpoint section '{name}' failed its CRC check"
            )));
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.u16(65_000);
        e.u32(4_000_000_000);
        e.u64(u64::MAX - 3);
        e.usize(12345);
        e.f64(-0.125);
        e.f64(f64::NAN);
        e.bytes(b"abc");
        e.str("héllo");
        e.opt(&Some(9u64), |e, v| e.u64(*v));
        e.opt(&None::<u64>, |e, v| e.u64(*v));
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u16().unwrap(), 65_000);
        assert_eq!(d.u32().unwrap(), 4_000_000_000);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.usize().unwrap(), 12345);
        assert_eq!(d.f64().unwrap(), -0.125);
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.bytes().unwrap(), b"abc");
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.opt(|d| d.u64()).unwrap(), Some(9));
        assert_eq!(d.opt(|d| d.u64()).unwrap(), None);
        d.finish().unwrap();
    }

    #[test]
    fn header_checks_magic_and_version() {
        let bytes = Enc::with_header().into_bytes();
        Dec::with_header(&bytes).unwrap();
        assert_eq!(Dec::with_header(b"NOTACKPT0000").unwrap_err(), SnapshotError::BadMagic);
        let mut bad = bytes.clone();
        bad[8] = 0xFF; // version -> huge
        assert!(matches!(
            Dec::with_header(&bad).unwrap_err(),
            SnapshotError::UnsupportedVersion { .. }
        ));
        assert!(matches!(
            Dec::with_header(&bytes[..5]).unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
    }

    #[test]
    fn truncation_reports_offset() {
        let mut e = Enc::new();
        e.u64(1);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..4]);
        match d.u64().unwrap_err() {
            SnapshotError::Truncated { offset, needed } => {
                assert_eq!(offset, 0);
                assert_eq!(needed, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tags_catch_drift() {
        let mut e = Enc::new();
        e.tag(0xA1);
        e.u32(5);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        d.expect_tag(0xA1, "stats").unwrap();
        assert_eq!(d.u32().unwrap(), 5);
        let mut d = Dec::new(&bytes);
        let err = d.expect_tag(0xB2, "other").unwrap_err();
        assert!(err.to_string().contains("other"), "{err}");
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check values (RFC 3720 appendix / zlib).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn header_accepts_the_previous_version() {
        let bytes = Enc::with_header().into_bytes();
        let mut old = bytes.clone();
        old[8..12].copy_from_slice(&1u32.to_le_bytes());
        assert_eq!(Dec::with_header(&old).unwrap().version(), 1);
        assert_eq!(Dec::with_header(&bytes).unwrap().version(), VERSION);
        let mut zero = bytes;
        zero[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            Dec::with_header(&zero).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 0, .. }
        ));
    }

    #[test]
    fn sections_roundtrip_and_pin_corruption() {
        let mut e = Enc::new();
        e.section(1, |e| e.u64(42));
        e.section(2, |e| e.str("payload"));
        let mut bytes = e.into_bytes();
        {
            let mut d = Dec::new(&bytes);
            let mut s1 = d.section(1, "first").unwrap();
            assert_eq!(s1.u64().unwrap(), 42);
            s1.finish().unwrap();
            let mut s2 = d.section(2, "second").unwrap();
            assert_eq!(s2.str().unwrap(), "payload");
            d.finish().unwrap();
        }
        // Flip one payload byte: the strict reader names the section, the
        // lenient reader reports the bad CRC but still advances to the
        // next (intact) section.
        let len = bytes.len();
        bytes[len - 2] ^= 0x40;
        let mut d = Dec::new(&bytes);
        d.section(1, "first").unwrap();
        let err = d.section(2, "second").unwrap_err();
        assert!(err.to_string().contains("'second'"), "{err}");
        let mut d = Dec::new(&bytes);
        let (_, ok) = d.section_frame(1, "first").unwrap();
        assert!(ok);
        let (_, ok) = d.section_frame(2, "second").unwrap();
        assert!(!ok);
        d.finish().unwrap();
        // Frame-level damage (wrong id) is unrecoverable.
        bytes[0] = 9;
        let err = Dec::new(&bytes).section_frame(1, "first").unwrap_err();
        assert!(err.to_string().contains("'first'"), "{err}");
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut e = Enc::new();
        e.u8(1);
        e.u8(2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        d.u8().unwrap();
        assert!(matches!(d.finish().unwrap_err(), SnapshotError::Corrupt(_)));
    }
}

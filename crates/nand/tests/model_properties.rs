//! Property-based tests on the NAND device models: encoding bijectivity,
//! RBER behaviour under parameter perturbations, and simulator/analytic
//! agreement.

use evanesco_nand::cell::{read_ref_voltages, CellTech, PageType};
use evanesco_nand::ecc::EccModel;
use evanesco_nand::geometry::{Geometry, PageId};
use evanesco_nand::math;
use evanesco_nand::noise::{adjusted_states, Condition};
use evanesco_nand::osr::{sanitize_page, OsrParams};
use evanesco_nand::rber::{page_rber, page_rber_with_refs};
use evanesco_nand::timing::Nanos;
use evanesco_nand::vth::{StateDistributions, WordlineSim};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tech_strategy() -> impl Strategy<Value = CellTech> {
    prop_oneof![Just(CellTech::Slc), Just(CellTech::Mlc), Just(CellTech::Tlc), Just(CellTech::Qlc)]
}

proptest! {
    #[test]
    fn rber_bounded_and_widening_never_helps(
        tech in tech_strategy(),
        widen in 1.0f64..4.0,
    ) {
        let base = StateDistributions::nominal(tech);
        let mut wide = base.clone();
        for p in wide.params_mut() {
            p.sigma *= widen;
        }
        for &ty in tech.page_types() {
            let r0 = page_rber(&base, ty);
            let r1 = page_rber(&wide, ty);
            prop_assert!((0.0..=1.0).contains(&r0));
            prop_assert!((0.0..=1.0).contains(&r1));
            prop_assert!(r1 + 1e-12 >= r0, "widening reduced rber: {r0} -> {r1}");
        }
    }

    #[test]
    fn rber_monotone_in_wear(pe1 in 0u32..1000, pe2 in 0u32..1000) {
        let (lo, hi) = (pe1.min(pe2), pe1.max(pe2));
        let r_lo = page_rber(&adjusted_states(CellTech::Tlc, Condition::cycled(lo)), PageType::Csb);
        let r_hi = page_rber(&adjusted_states(CellTech::Tlc, Condition::cycled(hi)), PageType::Csb);
        prop_assert!(r_hi + 1e-15 >= r_lo);
    }

    #[test]
    fn shifted_refs_never_beat_nominal_midpoints(
        shift in -0.3f64..0.3,
    ) {
        // The nominal midpoint references are (near-)optimal for symmetric
        // distributions; shifting all refs together cannot reduce RBER much.
        let dists = adjusted_states(CellTech::Tlc, Condition::cycled(1000));
        let refs: Vec<f64> = read_ref_voltages(CellTech::Tlc, PageType::Msb)
            .into_iter()
            .map(|r| r + shift)
            .collect();
        let nominal = page_rber(&dists, PageType::Msb);
        let shifted = page_rber_with_refs(&dists, PageType::Msb, &refs);
        prop_assert!(shifted + 1e-9 >= nominal * 0.9);
    }

    #[test]
    fn geometry_page_roundtrip(blocks in 1u32..64, wls in 1u32..64, page in 0u32..192) {
        let geom = Geometry {
            tech: CellTech::Tlc,
            blocks,
            wordlines_per_block: wls,
            page_bytes: 16 * 1024,
            spare_bytes: 1024,
        };
        let ppb = geom.pages_per_block();
        let p = PageId(page % ppb);
        let (wl, ty) = geom.page_to_wordline(p);
        prop_assert_eq!(geom.wordline_to_page(wl, ty), p);
        prop_assert!(wl.0 < wls);
    }

    #[test]
    fn nanos_arithmetic_laws(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let (na, nb) = (Nanos(a), Nanos(b));
        prop_assert_eq!(na + nb, nb + na);
        prop_assert_eq!((na + nb).saturating_sub(nb), na);
        prop_assert_eq!(na.saturating_sub(na + nb), Nanos::ZERO);
        prop_assert!((na.as_secs_f64() - a as f64 / 1e9).abs() < 1e-15);
    }

    #[test]
    fn phi_is_monotone_cdf(x in -6.0f64..6.0, dx in 0.0f64..3.0) {
        prop_assert!(math::phi(x + dx) + 1e-12 >= math::phi(x));
        prop_assert!((0.0..=1.0).contains(&math::phi(x)));
    }

    #[test]
    fn osr_always_destroys_target_and_never_lowers_vth(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cond = Condition::cycled(1000);
        let dists = adjusted_states(CellTech::Tlc, cond);
        let mut wl = WordlineSim::new(CellTech::Tlc, 2048);
        wl.program_random(&mut rng, &dists);
        let before = wl.vth().to_vec();
        let out = sanitize_page(&mut rng, &mut wl, PageType::Lsb, cond, &OsrParams::default());
        let ecc = EccModel::default();
        prop_assert!(out.sanitized_page_rber > 5.0 * ecc.limit_rber());
        for (b, a) in before.iter().zip(wl.vth()) {
            prop_assert!(a >= b);
        }
    }

    #[test]
    fn mc_rber_tracks_analytic(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dists = adjusted_states(CellTech::Tlc, Condition::one_year_retention(1000));
        let analytic = page_rber(&dists, PageType::Csb);
        let mut wl = WordlineSim::with_default_cells(CellTech::Tlc);
        wl.program_random(&mut rng, &dists);
        let mc = wl.rber(PageType::Csb);
        // Single-wordline MC is noisy; allow a generous band.
        prop_assert!(mc < analytic * 2.0 + 1e-3, "mc {mc} analytic {analytic}");
        prop_assert!(mc > analytic * 0.4 - 1e-3, "mc {mc} analytic {analytic}");
    }
}

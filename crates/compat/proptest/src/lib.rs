//! A dependency-free, API-compatible subset of the `proptest` crate.
//!
//! The workspace builds in environments without network access, so it
//! vendors the property-testing surface its suites use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`/`boxed`, range / tuple /
//! [`strategy::Just`] / [`any`](strategy::any) strategies,
//! [`collection::vec`], [`prop_oneof!`], the `prop_assert*` macros and
//! [`prop_assume!`].
//!
//! Differences from upstream, chosen deliberately:
//!
//! * **No shrinking.** On failure the runner prints the generated inputs
//!   and a replay seed instead. Set `PROPTEST_SEED=<seed>` (and usually
//!   `PROPTEST_CASES=1`) to re-run exactly the failing case.
//! * **Deterministic by default.** The base seed is derived from the test
//!   name, not from OS entropy, so CI failures always reproduce locally.
//! * `PROPTEST_CASES=<n>` scales every suite's case count (upstream honors
//!   this too).

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test-case values.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Chains a value-dependent follow-up strategy.
        fn prop_flat_map<U, S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            U: Debug,
            S2: Strategy<Value = U>,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.sample(rng)))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        U: Debug,
        S2: Strategy<Value = U>,
        F: Fn(S::Value) -> S2,
    {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut StdRng) -> T>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform over the whole domain of `T` (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    /// The `any::<T>()` strategy: uniform over `T`'s domain.
    pub fn any<T: rand::StandardSample + Debug>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: rand::StandardSample + Debug> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    /// Weighted choice between strategies (the [`prop_oneof!`](crate::prop_oneof) backend).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if the arms are empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u32 = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }

    /// Re-export so `rng.gen_range(range.clone())` type-checks above.
    trait _Seal {}
    #[allow(unused)]
    fn _assert_sample_range<T, R: SampleRange<T>>() {}
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Per-suite configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
        /// Upper bound on rejected cases before the runner gives up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (assumption not met).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        /// Prepends the generated-input dump to a failure message.
        pub fn with_context(self, inputs: String) -> Self {
            match self {
                TestCaseError::Fail(m) => TestCaseError::Fail(format!("{m}\n  inputs: {inputs}")),
                r => r,
            }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// The seed for case number `attempt` of a run with base seed `base`.
    pub fn case_seed(base: u64, attempt: u64) -> u64 {
        base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Drives one property test: draws inputs, runs the body, replays
    /// panics with seed diagnostics.
    ///
    /// # Panics
    ///
    /// Panics when a case fails, when the body panics, or when too many
    /// cases are rejected.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| fnv1a(name));
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(config.cases)
            .max(1);

        let mut accepted: u32 = 0;
        let mut attempt: u64 = 0;
        let mut rejected: u32 = 0;
        while accepted < cases {
            let seed = case_seed(base, attempt);
            attempt += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
            match outcome {
                Ok(Ok(())) => accepted += 1,
                Ok(Err(TestCaseError::Reject(_))) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "{name}: too many prop_assume! rejections ({rejected})"
                    );
                }
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!(
                        "{name}: property failed at case seed {seed}\n  {msg}\n  \
                         replay: PROPTEST_SEED={seed} PROPTEST_CASES=1 cargo test {short}",
                        short = name.rsplit("::").next().unwrap_or(name)
                    );
                }
                Err(payload) => {
                    eprintln!(
                        "{name}: body panicked at case seed {seed}; \
                         replay: PROPTEST_SEED={seed} PROPTEST_CASES=1 cargo test {short}",
                        short = name.rsplit("::").next().unwrap_or(name)
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)*), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    let mut __inputs = ::std::string::String::new();
                    $(
                        let __value = $crate::strategy::Strategy::sample(&($strat), __rng);
                        __inputs.push_str(&format!(
                            concat!(stringify!($arg), " = {:?}; "),
                            &__value
                        ));
                        let $arg = __value;
                    )+
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    __result.map_err(|e| e.with_context(__inputs))
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..=6), f in -1.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn oneof_and_map_and_vec(
            v in crate::collection::vec(
                prop_oneof![2 => (0u8..4).prop_map(|x| x * 2), 1 => Just(99u8)],
                1..20
            )
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in v {
                prop_assert!(x == 99 || (x % 2 == 0 && x < 8), "bad value {x}");
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = (0u64..1000, 0u64..1000);
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_replay_seed() {
        let cfg = crate::test_runner::ProptestConfig { cases: 8, ..Default::default() };
        crate::test_runner::run(&cfg, "demo::always_fails", |_rng| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }
}

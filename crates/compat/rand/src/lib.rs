//! A dependency-free, API-compatible subset of the `rand` 0.8 crate.
//!
//! The workspace builds in environments without network access, so instead
//! of pulling `rand` from a registry it vendors the exact surface the
//! simulator uses:
//!
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`];
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`].
//!
//! Everything is **deterministic by construction**: `StdRng` is a
//! SplitMix64 generator, there is no `thread_rng`, and no entropy source —
//! every random stream in the repository must be derived from an explicit
//! seed, which is exactly the property the crash-replay and reproducibility
//! tests rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution (uniform over the
/// value domain; floats uniform in `[0, 1)`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly (the argument type of [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        let mut this = self;
        T::sample_standard(&mut this)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        let mut this = self;
        range.sample_from(&mut this)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Not the upstream `StdRng` algorithm (ChaCha12), but statistically
    /// adequate for the Monte-Carlo models here and — critically — stable
    /// across platforms and releases, so recorded crash-replay seeds never
    /// rot.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl StdRng {
        /// The raw generator state, for checkpointing a live stream.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuilds a generator mid-stream from a state captured by
        /// [`StdRng::state`]. Unlike [`super::SeedableRng::seed_from_u64`]
        /// this performs no scrambling: the restored generator continues
        /// the original stream exactly where it left off.
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One scramble round so nearby seeds diverge immediately.
            let mut rng = StdRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
            let w = rng.gen_range(-2i64..3);
            assert!((-2..3).contains(&w));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            let _: u64 = a.gen();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn generic_rng_works_unsized() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let a = draw(&mut rng);
        assert!((0.0..1.0).contains(&a));
    }
}

//! A dependency-free, API-compatible subset of the `criterion` crate.
//!
//! The workspace builds in environments without network access, so it
//! vendors the benchmark-harness surface its benches use: [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a calibrated loop around
//! `Instant::now()` with mean/min reporting — because the simulator's
//! canonical performance numbers come from its own simulated-time model,
//! not wall-clock microbenchmarks. The harness exists so `cargo bench`
//! runs everywhere and regressions of an order of magnitude are visible.

use std::fmt;
pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing loop handed to each benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher { samples: Vec::new(), iters_per_sample: 1 }
    }

    /// Runs `f` repeatedly and records per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one sample takes >= 1ms, capped.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                self.samples.push(dt);
                break;
            }
            iters *= 4;
        }
        // A few more samples at the calibrated batch size.
        for _ in 0..4 {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let per_iter = |d: &Duration| d.as_nanos() as f64 / self.iters_per_sample as f64;
        let min = self.samples.iter().map(per_iter).fold(f64::INFINITY, f64::min);
        let mean = self.samples.iter().map(per_iter).sum::<f64>() / self.samples.len() as f64;
        println!("{id:<40} mean {mean:>12.1} ns/iter   min {min:>12.1} ns/iter");
    }
}

/// A benchmark identifier (`BenchmarkId::from_parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier made from a function name and a parameter.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Identifier made from a parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sets the sample count (accepted for API compatibility; the simple
    /// harness keeps its own fixed sampling).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("inc", |b| b.iter(|| ran = ran.wrapping_add(1)));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert!(ran > 0, "body must have run");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("mail").to_string(), "mail");
        assert_eq!(BenchmarkId::new("a", "b").to_string(), "a/b");
    }
}

//! Property-based tests of the trace generator: bounds, determinism, and
//! volume targets hold for arbitrary spec variations, not just the four
//! Table-2 presets.

use evanesco_workloads::generate::generate;
use evanesco_workloads::spec::{OpMix, WorkloadSpec};
use evanesco_workloads::trace::TraceOp;
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        0.0f64..2.0, // reads_per_write
        1u32..60,    // create weight
        0u32..60,    // append weight
        0u32..60,    // overwrite weight
        0u32..60,    // delete weight
        1u64..8,     // write size lo
        0u64..24,    // write size extra
        0.0f64..1.0, // secure fraction
    )
        .prop_map(|(rpw, c, a, o, d, lo, extra, sf)| WorkloadSpec {
            name: "prop",
            reads_per_write: rpw,
            mix: OpMix { create: c, append: a, overwrite: o, delete: d },
            write_pages: (lo, lo + extra),
            file_pages: (lo, (lo + extra).max(2)),
            secure_fraction: sf,
            target_utilization: 0.7,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_specs_generate_valid_traces(
        spec in spec_strategy(),
        seed in 0u64..1000,
    ) {
        let logical = 2048u64;
        let volume = 1500u64;
        let trace = generate(&spec, logical, volume, seed);

        // Volume target met.
        prop_assert!(trace.main_write_pages() >= volume);

        // All ops in bounds, nonempty, and trims only cover owned pages
        // (no double-free: a page must be written before each trim of it).
        let mut live = vec![false; logical as usize];
        for op in trace.prefill.iter().chain(&trace.ops) {
            match *op {
                TraceOp::Write { lpa, npages, .. } => {
                    prop_assert!(lpa + npages <= logical);
                    prop_assert!(npages > 0);
                    for l in lpa..lpa + npages {
                        live[l as usize] = true;
                    }
                }
                TraceOp::Read { lpa, npages } => {
                    prop_assert!(lpa + npages <= logical);
                    prop_assert!(npages > 0);
                }
                TraceOp::Trim { lpa, npages, .. } => {
                    prop_assert!(lpa + npages <= logical);
                    for l in lpa..lpa + npages {
                        prop_assert!(live[l as usize], "trim of never-written lpa {}", l);
                        live[l as usize] = false;
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_seed(
        spec in spec_strategy(),
        seed in 0u64..1000,
    ) {
        let a = generate(&spec, 1024, 500, seed);
        let b = generate(&spec, 1024, 500, seed);
        prop_assert_eq!(a.prefill, b.prefill);
        prop_assert_eq!(a.ops, b.ops);
    }
}

//! # evanesco-workloads
//!
//! Benchmark workloads for the Evanesco (ASPLOS 2020) reproduction:
//!
//! * [`spec::WorkloadSpec`] — the paper's Table-2 workloads (MailServer,
//!   DBServer, FileServer, Mobile) as seeded synthetic generators;
//! * [`fs::FileModel`] + [`generate::generate`] — file-level trace
//!   generation (create/append/overwrite/delete, prefill to 75 %
//!   utilization, interleaved reads at the Table-2 ratios);
//! * [`vertrace::VerTrace`] — the §3 data-versioning study: per-file
//!   `N_valid`/`N_invalid` tracking, VAF and T_insecure metrics, UV/MV
//!   classification (Table 1, Figure 4);
//! * [`ledger::ExposureLedger`] — the *live* counterpart of VerTrace:
//!   identical per-class accounting plus retirement-path attribution
//!   (host update / trim / GC copy) and exposure-window histograms;
//! * [`replay`] — drives a trace through the `evanesco-ssd` emulator with
//!   measured-phase isolation;
//! * [`tenants`] — open-loop multi-tenant fleet traffic (Zipf-distributed
//!   tenant popularity, diurnal arrival process) consumed by
//!   `evanesco-fleet`.
//!
//! ```rust
//! use evanesco_workloads::generate::generate;
//! use evanesco_workloads::replay::replay;
//! use evanesco_workloads::spec::WorkloadSpec;
//! use evanesco_ssd::{Emulator, SsdConfig};
//! use evanesco_ftl::SanitizePolicy;
//!
//! # fn main() {
//! let mut cfg = SsdConfig::tiny_for_tests();
//! cfg.track_tags = false;
//! cfg.stale_audit = false;
//! let mut ssd = Emulator::new(cfg, SanitizePolicy::evanesco());
//! let trace = generate(&WorkloadSpec::mail_server(), ssd.logical_pages(), 200, 42);
//! let result = replay(&mut ssd, &trace);
//! assert!(result.iops > 0.0);
//! # }
//! ```

pub mod fs;
pub mod generate;
pub mod ledger;
pub mod replay;
pub mod serialize;
pub mod spec;
pub mod tenants;
pub mod trace;
pub mod vertrace;

pub use ledger::{CauseCounts, ClassExposure, ExposureHistogram, ExposureLedger, LedgerReport};
pub use spec::WorkloadSpec;
pub use tenants::{generate_fleet, TenantOp, TenantProfile, TrafficConfig};
pub use trace::{FileId, Trace, TraceOp};
pub use vertrace::{VerTrace, VerTraceReport};

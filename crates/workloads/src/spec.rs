//! Workload specifications matching the paper's Table 2.
//!
//! | Benchmark  | read:write | file write pattern                 | write size   |
//! |------------|-----------:|------------------------------------|--------------|
//! | MailServer | 1:1        | create/append/delete e-mails       | 16–32 KiB    |
//! | DBServer   | 1:10       | overwrite data files and log files | 16–256 KiB   |
//! | FileServer | 3:4        | create/append/delete files         | 32–128 KiB   |
//! | Mobile     | 1:50       | create/delete pictures             | 0.5–8 MiB    |
//!
//! Sizes are expressed in 16-KiB pages (the paper aligns all requests to
//! the physical page size).

/// Relative weights of the write-side events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Create a new file.
    pub create: u32,
    /// Append to an existing file.
    pub append: u32,
    /// Overwrite a range of an existing file in place.
    pub overwrite: u32,
    /// Delete an existing file.
    pub delete: u32,
}

impl OpMix {
    /// Total weight.
    pub fn total(&self) -> u32 {
        self.create + self.append + self.overwrite + self.delete
    }
}

/// A synthetic workload specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name.
    pub name: &'static str,
    /// Read volume per written volume (e.g. 1:10 → 0.1).
    pub reads_per_write: f64,
    /// Event mix.
    pub mix: OpMix,
    /// Per-request write size range in pages, inclusive.
    pub write_pages: (u64, u64),
    /// New-file size range in pages, inclusive.
    pub file_pages: (u64, u64),
    /// Fraction of files created with a security requirement (the rest are
    /// opened `O_INSEC`).
    pub secure_fraction: f64,
    /// Target steady-state utilization (the paper prefills to 75 %).
    pub target_utilization: f64,
}

impl WorkloadSpec {
    /// Table 2 MailServer: 1:1 reads, create/append/delete, 16–32 KiB.
    pub fn mail_server() -> Self {
        WorkloadSpec {
            name: "MailServer",
            reads_per_write: 1.0,
            mix: OpMix { create: 45, append: 20, overwrite: 0, delete: 35 },
            write_pages: (1, 2),
            file_pages: (1, 4),
            secure_fraction: 1.0,
            target_utilization: 0.75,
        }
    }

    /// Table 2 DBServer: 1:10 reads, overwrites of data and log files,
    /// 16–256 KiB.
    pub fn db_server() -> Self {
        WorkloadSpec {
            name: "DBServer",
            reads_per_write: 0.1,
            mix: OpMix { create: 2, append: 23, overwrite: 70, delete: 5 },
            write_pages: (1, 16),
            file_pages: (64, 256),
            secure_fraction: 1.0,
            target_utilization: 0.75,
        }
    }

    /// Table 2 FileServer: 3:4 reads, create/append/delete, 32–128 KiB.
    pub fn file_server() -> Self {
        WorkloadSpec {
            name: "FileServer",
            reads_per_write: 0.75,
            mix: OpMix { create: 40, append: 30, overwrite: 5, delete: 25 },
            write_pages: (2, 8),
            file_pages: (2, 16),
            secure_fraction: 1.0,
            target_utilization: 0.75,
        }
    }

    /// Table 2 Mobile: 1:50 reads, create/delete pictures, 0.5–8 MiB.
    pub fn mobile() -> Self {
        WorkloadSpec {
            name: "Mobile",
            reads_per_write: 0.02,
            mix: OpMix { create: 55, append: 0, overwrite: 0, delete: 45 },
            write_pages: (32, 512),
            file_pages: (32, 512),
            secure_fraction: 1.0,
            target_utilization: 0.75,
        }
    }

    /// All four Table 2 workloads.
    pub fn table2() -> [WorkloadSpec; 4] {
        [Self::mail_server(), Self::db_server(), Self::file_server(), Self::mobile()]
    }

    /// This spec with a different secure-data fraction (Figure 14c sweep).
    pub fn with_secure_fraction(mut self, f: f64) -> Self {
        self.secure_fraction = f;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_ratios_match_paper() {
        assert_eq!(WorkloadSpec::mail_server().reads_per_write, 1.0);
        assert!((WorkloadSpec::db_server().reads_per_write - 0.1).abs() < 1e-12);
        assert!((WorkloadSpec::file_server().reads_per_write - 0.75).abs() < 1e-12);
        assert!((WorkloadSpec::mobile().reads_per_write - 0.02).abs() < 1e-12);
    }

    #[test]
    fn table2_write_sizes_match_paper() {
        // 16 KiB pages: 16–32 KiB = 1–2 pages, …, 0.5–8 MiB = 32–512 pages.
        assert_eq!(WorkloadSpec::mail_server().write_pages, (1, 2));
        assert_eq!(WorkloadSpec::db_server().write_pages, (1, 16));
        assert_eq!(WorkloadSpec::file_server().write_pages, (2, 8));
        assert_eq!(WorkloadSpec::mobile().write_pages, (32, 512));
    }

    #[test]
    fn db_server_is_overwrite_dominated() {
        let m = WorkloadSpec::db_server().mix;
        assert!(m.overwrite > m.create + m.append / 2);
    }

    #[test]
    fn mobile_has_no_updates() {
        let m = WorkloadSpec::mobile().mix;
        assert_eq!(m.overwrite, 0);
        assert_eq!(m.append, 0);
    }

    #[test]
    fn secure_fraction_override() {
        let s = WorkloadSpec::mobile().with_secure_fraction(0.6);
        assert!((s.secure_fraction - 0.6).abs() < 1e-12);
    }

    #[test]
    fn mix_total() {
        for s in WorkloadSpec::table2() {
            assert_eq!(s.mix.total(), 100, "{} mix should sum to 100", s.name);
        }
    }
}

//! Host I/O trace model.
//!
//! A trace is a sequence of page-granular host operations annotated with
//! the owning file, so the VerTrace study can attribute page versions to
//! files (the paper's per-page file annotations, §3).

use evanesco_ftl::Lpa;

/// File identifier within a trace.
pub type FileId = u32;

/// One host operation over a contiguous logical range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Write `npages` pages starting at `lpa` on behalf of `file`.
    Write {
        /// Owning file.
        file: FileId,
        /// Start logical page.
        lpa: Lpa,
        /// Page count.
        npages: u64,
        /// Security requirement of the data.
        secure: bool,
        /// Whether this write replaces existing file content (overwrite) —
        /// makes the file multi-version.
        overwrite: bool,
    },
    /// Read `npages` pages starting at `lpa`.
    Read {
        /// Start logical page.
        lpa: Lpa,
        /// Page count.
        npages: u64,
    },
    /// Trim (delete) `npages` pages starting at `lpa`, formerly owned by
    /// `file`.
    Trim {
        /// Owning file.
        file: FileId,
        /// Start logical page.
        lpa: Lpa,
        /// Page count.
        npages: u64,
    },
}

impl TraceOp {
    /// Pages written by this operation.
    pub fn write_pages(&self) -> u64 {
        match self {
            TraceOp::Write { npages, .. } => *npages,
            _ => 0,
        }
    }
}

/// A complete benchmark trace: a prefill phase (fills the SSD to its target
/// utilization, excluded from measurement) and a measured main phase.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Workload name (e.g. "DBServer").
    pub name: String,
    /// Warm-up operations (excluded from measured metrics).
    pub prefill: Vec<TraceOp>,
    /// Measured operations.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Total pages written in the measured phase.
    pub fn main_write_pages(&self) -> u64 {
        self.ops.iter().map(TraceOp::write_pages).sum()
    }

    /// Total pages written in the prefill phase.
    pub fn prefill_write_pages(&self) -> u64 {
        self.prefill.iter().map(TraceOp::write_pages).sum()
    }

    /// Measured-phase statistics.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_ops(&self.ops)
    }
}

/// Aggregate statistics of a trace's operations — used to validate the
/// generators against the Table-2 targets from the data itself.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceStats {
    /// Write operations.
    pub write_ops: u64,
    /// Pages written.
    pub write_pages: u64,
    /// Pages written by in-place overwrites.
    pub overwrite_pages: u64,
    /// Pages written with a security requirement.
    pub secure_pages: u64,
    /// Read operations.
    pub read_ops: u64,
    /// Pages read.
    pub read_pages: u64,
    /// Trim operations.
    pub trim_ops: u64,
    /// Pages trimmed.
    pub trim_pages: u64,
}

impl TraceStats {
    /// Computes statistics over a slice of operations.
    pub fn from_ops(ops: &[TraceOp]) -> Self {
        let mut s = TraceStats::default();
        for op in ops {
            match *op {
                TraceOp::Write { npages, secure, overwrite, .. } => {
                    s.write_ops += 1;
                    s.write_pages += npages;
                    if overwrite {
                        s.overwrite_pages += npages;
                    }
                    if secure {
                        s.secure_pages += npages;
                    }
                }
                TraceOp::Read { npages, .. } => {
                    s.read_ops += 1;
                    s.read_pages += npages;
                }
                TraceOp::Trim { npages, .. } => {
                    s.trim_ops += 1;
                    s.trim_pages += npages;
                }
            }
        }
        s
    }

    /// Measured read:write volume ratio.
    pub fn read_write_ratio(&self) -> f64 {
        if self.write_pages == 0 {
            0.0
        } else {
            self.read_pages as f64 / self.write_pages as f64
        }
    }

    /// Fraction of written pages that are in-place overwrites.
    pub fn overwrite_fraction(&self) -> f64 {
        if self.write_pages == 0 {
            0.0
        } else {
            self.overwrite_pages as f64 / self.write_pages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_page_accounting() {
        let t = Trace {
            name: "t".into(),
            prefill: vec![TraceOp::Write {
                file: 0,
                lpa: 0,
                npages: 4,
                secure: true,
                overwrite: false,
            }],
            ops: vec![
                TraceOp::Write { file: 0, lpa: 4, npages: 2, secure: true, overwrite: false },
                TraceOp::Read { lpa: 0, npages: 8 },
                TraceOp::Trim { file: 0, lpa: 0, npages: 4 },
            ],
        };
        assert_eq!(t.prefill_write_pages(), 4);
        assert_eq!(t.main_write_pages(), 2);
        assert_eq!(t.ops[1].write_pages(), 0);
    }

    #[test]
    fn trace_stats_aggregate_correctly() {
        let ops = vec![
            TraceOp::Write { file: 0, lpa: 0, npages: 4, secure: true, overwrite: false },
            TraceOp::Write { file: 0, lpa: 0, npages: 2, secure: false, overwrite: true },
            TraceOp::Read { lpa: 0, npages: 3 },
            TraceOp::Trim { file: 0, lpa: 0, npages: 6 },
        ];
        let s = TraceStats::from_ops(&ops);
        assert_eq!(s.write_ops, 2);
        assert_eq!(s.write_pages, 6);
        assert_eq!(s.overwrite_pages, 2);
        assert_eq!(s.secure_pages, 4);
        assert_eq!(s.read_pages, 3);
        assert_eq!(s.trim_pages, 6);
        assert!((s.read_write_ratio() - 0.5).abs() < 1e-12);
        assert!((s.overwrite_fraction() - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(TraceStats::default().read_write_ratio(), 0.0);
        assert_eq!(TraceStats::default().overwrite_fraction(), 0.0);
    }
}

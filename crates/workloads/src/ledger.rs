//! The live exposure ledger: per-stream (file/class) sanitization
//! attribution, computed online from FTL observer events.
//!
//! [`VerTrace`](crate::vertrace::VerTrace) is the paper's *offline*
//! measurement tool; the ledger produces the same per-file N_valid /
//! N_invalid accounting (identical counting rules, so the two can be
//! cross-checked run-for-run) and adds what a post-hoc scan cannot see:
//!
//! * **retirement-path attribution** — which invalidation path retired
//!   each page (host update vs trim vs GC copy; [`InvalidateCause`]),
//!   split by secured / exposed;
//! * **exposure-window histogram** — for every invalidated page, the
//!   logical-time window from invalidation until its content became
//!   unrecoverable (zero when the policy sanitized on the spot, the
//!   wait-for-erase window otherwise; still-open windows are
//!   right-censored at [`ExposureLedger::finalize`]).
//!
//! Both are reported per file class (UV / MV) in the Table-1 shape, so
//! "which data was exposed, for how long, and which path exposed it" is
//! observable while a run executes.

use crate::trace::FileId;
use crate::vertrace::ClassStats;
use evanesco_ftl::observer::{FtlObserver, InvalidateCause};
use evanesco_ftl::{GlobalPpa, Lpa};
use std::collections::HashMap;

/// Log2-bucketed histogram of exposure windows, in logical ticks.
///
/// Bucket 0 holds zero-tick windows (sanitized at invalidation); bucket
/// `k > 0` holds windows in `[2^(k-1), 2^k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExposureHistogram {
    /// Window counts per log2 bucket.
    pub buckets: [u64; 34],
    /// Total windows recorded.
    pub count: u64,
    /// Sum of all windows (ticks).
    pub sum: u64,
    /// Largest window (ticks).
    pub max: u64,
}

impl Default for ExposureHistogram {
    fn default() -> Self {
        ExposureHistogram { buckets: [0; 34], count: 0, sum: 0, max: 0 }
    }
}

impl ExposureHistogram {
    fn bucket_of(ticks: u64) -> usize {
        ((u64::BITS - ticks.leading_zeros()) as usize).min(33)
    }

    /// Records one exposure window of `ticks`.
    pub fn record(&mut self, ticks: u64) {
        self.buckets[Self::bucket_of(ticks)] += 1;
        self.count += 1;
        self.sum += ticks;
        self.max = self.max.max(ticks);
    }

    /// Mean window in ticks (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fraction of windows that were zero (sanitized immediately).
    pub fn zero_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.buckets[0] as f64 / self.count as f64
        }
    }

    /// Merges `other` into `self`.
    pub fn absorb(&mut self, other: &ExposureHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Per-cause page-retirement counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CauseCounts {
    /// All invalidations by cause `[host_update, trim, gc_copy]`.
    pub total: [u64; 3],
    /// Secured-page subset.
    pub secured: [u64; 3],
    /// Secured pages left *exposed* (not sanitized at invalidation).
    pub exposed: [u64; 3],
}

impl CauseCounts {
    fn idx(cause: InvalidateCause) -> usize {
        match cause {
            InvalidateCause::HostUpdate => 0,
            InvalidateCause::Trim => 1,
            InvalidateCause::GcCopy => 2,
        }
    }

    fn note(&mut self, cause: InvalidateCause, secure: bool, sanitized: bool) {
        let i = Self::idx(cause);
        self.total[i] += 1;
        if secure {
            self.secured[i] += 1;
            if !sanitized {
                self.exposed[i] += 1;
            }
        }
    }

    fn absorb(&mut self, other: &CauseCounts) {
        for i in 0..3 {
            self.total[i] += other.total[i];
            self.secured[i] += other.secured[i];
            self.exposed[i] += other.exposed[i];
        }
    }
}

/// Per-file exposure accounting (the ledger's unit of attribution).
#[derive(Debug, Clone, Default)]
pub struct FileExposure {
    /// Live pages now.
    pub valid: u64,
    /// Stale-but-present pages now.
    pub invalid: u64,
    /// Peak live pages.
    pub max_valid: u64,
    /// Peak stale pages.
    pub max_invalid: u64,
    /// Accumulated ticks with `invalid > 0`.
    pub insecure_ticks: u64,
    /// Whether the file was ever overwritten or deleted (multi-version).
    pub multi_version: bool,
    /// Which paths retired this file's pages.
    pub causes: CauseCounts,
    /// Exposure windows of this file's invalidated pages.
    pub exposure: ExposureHistogram,
    insecure_since: Option<u64>,
}

impl FileExposure {
    /// Version amplification factor of the file.
    pub fn vaf(&self) -> f64 {
        if self.max_valid == 0 {
            0.0
        } else {
            self.max_invalid as f64 / self.max_valid as f64
        }
    }
}

/// Aggregated attribution for one file class (UV or MV).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassExposure {
    /// The Table-1 numbers, aggregated exactly like
    /// [`VerTrace::report`](crate::vertrace::VerTrace::report).
    pub stats: ClassStats,
    /// Retirement paths across the class's files.
    pub causes: CauseCounts,
    /// Exposure windows across the class's files.
    pub exposure: ExposureHistogram,
}

/// The ledger's end-of-run report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LedgerReport {
    /// Uni-version files.
    pub uv: ClassExposure,
    /// Multi-version files.
    pub mv: ClassExposure,
    /// Device-wide retirement paths (files with no live peak included).
    pub device_causes: CauseCounts,
}

/// One tracked physical page: owning file, liveness, and — when invalid
/// and still recoverable — when/how it became exposed.
#[derive(Debug, Clone, Copy)]
struct PageEntry {
    file: FileId,
    live: bool,
    exposed_since: Option<u64>,
}

/// Sentinel for "this LPA maps to no tracked file" in the dense LPA
/// table. Workload file ids are small sequential integers; `u32::MAX`
/// is never a real id.
const NO_FILE: FileId = FileId::MAX;

/// Dense per-block page table: indexed by page id, `None` = untracked.
type BlockPages = Vec<Option<PageEntry>>;

/// The live per-stream exposure ledger (an [`FtlObserver`]).
///
/// Counting rules are identical to VerTrace's: a sanitized invalidation
/// never counts as an invalid version; an erase removes every tracked
/// page of the block; logical time is one tick per accepted host page
/// write. The `secure` flag does not affect version counting (VerTrace
/// parity) — it drives the per-cause secured/exposed split only.
///
/// The observer hooks fire once per physical page event, so the per-page
/// state is dense: the LPA→file map is a flat vector indexed by LPA, and
/// each tracked block is a flat page vector recycled through a spare pool
/// on erase (no per-page hashing or allocation in steady state).
#[derive(Debug, Clone, Default)]
pub struct ExposureLedger {
    tick: u64,
    /// LPA → owning file; [`NO_FILE`] = unmapped. Grows to the highest
    /// LPA the workload touches.
    lpa_file: Vec<FileId>,
    /// `(chip, block)` → dense page table.
    phys: HashMap<(usize, u32), BlockPages>,
    /// Cleared page tables recycled by [`ExposureLedger::on_erase`].
    spare: Vec<BlockPages>,
    /// Scratch list of files touched by an erase (reused across calls).
    touched: Vec<FileId>,
    files: HashMap<FileId, FileExposure>,
    device_causes: CauseCounts,
}

impl ExposureLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current logical time.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Replayer hook: called before the host writes `[lpa, lpa+n)` on
    /// behalf of `file`; `overwrite` marks in-place file updates.
    pub fn before_write(&mut self, file: FileId, lpa: Lpa, npages: u64, overwrite: bool) {
        let hi = (lpa + npages) as usize;
        if self.lpa_file.len() < hi {
            self.lpa_file.resize(hi, NO_FILE);
        }
        for slot in &mut self.lpa_file[lpa as usize..hi] {
            *slot = file;
        }
        let f = self.files.entry(file).or_default();
        if overwrite {
            f.multi_version = true;
        }
    }

    /// Replayer hook: called before the host trims `[lpa, lpa+n)`.
    pub fn before_trim(&mut self, file: FileId, lpa: Lpa, npages: u64) {
        self.files.entry(file).or_default().multi_version = true;
        let lo = (lpa as usize).min(self.lpa_file.len());
        let hi = ((lpa + npages) as usize).min(self.lpa_file.len());
        for slot in &mut self.lpa_file[lo..hi] {
            *slot = NO_FILE;
        }
    }

    /// All per-file accounting.
    pub fn files(&self) -> &HashMap<FileId, FileExposure> {
        &self.files
    }

    /// Closes open insecure intervals and right-censors still-open
    /// exposure windows at the current tick (pages whose stale content
    /// was never destroyed during the run).
    pub fn finalize(&mut self) {
        let tick = self.tick;
        for f in self.files.values_mut() {
            if let Some(since) = f.insecure_since.take() {
                f.insecure_ticks += tick - since;
            }
        }
        for block in self.phys.values_mut() {
            for entry in block.iter_mut().filter_map(Option::as_mut) {
                if let Some(since) = entry.exposed_since.take() {
                    if let Some(f) = self.files.get_mut(&entry.file) {
                        f.exposure.record(tick - since);
                    }
                }
            }
        }
    }

    /// Builds the per-class report, normalizing T_insecure by
    /// `capacity_pages` — the live Table 1, with attribution.
    pub fn report(&mut self, capacity_pages: u64) -> LedgerReport {
        self.finalize();
        let mut uv: Vec<&FileExposure> = Vec::new();
        let mut mv: Vec<&FileExposure> = Vec::new();
        // Aggregate in FileId order: float sums depend on summation order,
        // and HashMap iteration order differs per instance — a sorted walk
        // keeps the report bit-identical across runs and across
        // checkpoint/resume boundaries.
        let mut ids: Vec<FileId> = self.files.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let f = &self.files[&id];
            if f.max_valid == 0 {
                continue;
            }
            if f.multi_version {
                mv.push(f);
            } else {
                uv.push(f);
            }
        }
        let agg = |class: &[&FileExposure]| {
            let mut out = ClassExposure::default();
            if class.is_empty() {
                return out;
            }
            let n = class.len() as f64;
            let vafs: Vec<f64> = class.iter().map(|f| f.vaf()).collect();
            let tins: Vec<f64> =
                class.iter().map(|f| f.insecure_ticks as f64 / capacity_pages as f64).collect();
            out.stats = ClassStats {
                n_files: class.len() as u64,
                vaf_avg: vafs.iter().sum::<f64>() / n,
                vaf_max: vafs.iter().copied().fold(0.0, f64::max),
                tinsec_avg: tins.iter().sum::<f64>() / n,
                tinsec_max: tins.iter().copied().fold(0.0, f64::max),
            };
            for f in class {
                out.causes.absorb(&f.causes);
                out.exposure.absorb(&f.exposure);
            }
            out
        };
        LedgerReport { uv: agg(&uv), mv: agg(&mv), device_causes: self.device_causes }
    }

    /// Serializes the full ledger — logical clock, LPA→file map, tracked
    /// physical pages with their open exposure windows, per-file
    /// accounting, and device-wide cause counters — into a checkpoint
    /// stream (all maps in sorted key order for a canonical byte stream).
    pub fn encode_state(&self, e: &mut evanesco_nand::snapshot::Enc) {
        e.tag(0x60);
        e.u64(self.tick);
        // The dense tables serialize in index order, which is exactly the
        // sorted-key order the map-based encoding produced.
        e.usize(self.lpa_file.iter().filter(|&&f| f != NO_FILE).count());
        for (l, &f) in self.lpa_file.iter().enumerate() {
            if f != NO_FILE {
                e.u64(l as u64);
                e.u32(f);
            }
        }
        let mut blocks: Vec<(usize, u32)> = self.phys.keys().copied().collect();
        blocks.sort_unstable();
        e.usize(blocks.len());
        for key in blocks {
            e.usize(key.0);
            e.u32(key.1);
            let pages = &self.phys[&key];
            e.usize(pages.iter().filter(|s| s.is_some()).count());
            for (p, entry) in pages.iter().enumerate().filter_map(|(p, s)| Some((p, s.as_ref()?))) {
                e.u32(p as u32);
                e.u32(entry.file);
                e.bool(entry.live);
                e.opt(&entry.exposed_since, |e, &t| e.u64(t));
            }
        }
        let mut files: Vec<FileId> = self.files.keys().copied().collect();
        files.sort_unstable();
        e.usize(files.len());
        for id in files {
            let f = &self.files[&id];
            e.u32(id);
            e.u64(f.valid);
            e.u64(f.invalid);
            e.u64(f.max_valid);
            e.u64(f.max_invalid);
            e.u64(f.insecure_ticks);
            e.bool(f.multi_version);
            encode_causes(&f.causes, e);
            encode_histogram(&f.exposure, e);
            e.opt(&f.insecure_since, |e, &t| e.u64(t));
        }
        encode_causes(&self.device_causes, e);
    }

    /// Reconstructs a ledger from a stream written by
    /// [`ExposureLedger::encode_state`].
    ///
    /// # Errors
    ///
    /// Fails on truncation or structural corruption.
    pub fn decode_state(
        d: &mut evanesco_nand::snapshot::Dec<'_>,
    ) -> Result<Self, evanesco_nand::snapshot::SnapshotError> {
        d.expect_tag(0x60, "exposure-ledger")?;
        let tick = d.u64()?;
        let mut lpa_file = Vec::new();
        for _ in 0..d.usize()? {
            let l = d.u64()? as usize;
            let f = d.u32()?;
            if lpa_file.len() <= l {
                lpa_file.resize(l + 1, NO_FILE);
            }
            lpa_file[l] = f;
        }
        let mut phys = HashMap::new();
        for _ in 0..d.usize()? {
            let key = (d.usize()?, d.u32()?);
            let mut pages = BlockPages::new();
            for _ in 0..d.usize()? {
                let p = d.u32()? as usize;
                let file = d.u32()?;
                let live = d.bool()?;
                let exposed_since = d.opt(|d| d.u64())?;
                if pages.len() <= p {
                    pages.resize(p + 1, None);
                }
                pages[p] = Some(PageEntry { file, live, exposed_since });
            }
            phys.insert(key, pages);
        }
        let mut files = HashMap::new();
        for _ in 0..d.usize()? {
            let id = d.u32()?;
            let valid = d.u64()?;
            let invalid = d.u64()?;
            let max_valid = d.u64()?;
            let max_invalid = d.u64()?;
            let insecure_ticks = d.u64()?;
            let multi_version = d.bool()?;
            let causes = decode_causes(d)?;
            let exposure = decode_histogram(d)?;
            let insecure_since = d.opt(|d| d.u64())?;
            files.insert(
                id,
                FileExposure {
                    valid,
                    invalid,
                    max_valid,
                    max_invalid,
                    insecure_ticks,
                    multi_version,
                    causes,
                    exposure,
                    insecure_since,
                },
            );
        }
        let device_causes = decode_causes(d)?;
        Ok(ExposureLedger {
            tick,
            lpa_file,
            phys,
            spare: Vec::new(),
            touched: Vec::new(),
            files,
            device_causes,
        })
    }

    fn note_change(&mut self, file: FileId) {
        let tick = self.tick;
        let f = self.files.entry(file).or_default();
        f.max_valid = f.max_valid.max(f.valid);
        f.max_invalid = f.max_invalid.max(f.invalid);
        match (f.invalid > 0, f.insecure_since) {
            (true, None) => f.insecure_since = Some(tick),
            (false, Some(since)) => {
                f.insecure_ticks += tick - since;
                f.insecure_since = None;
            }
            _ => {}
        }
    }
}

fn encode_causes(c: &CauseCounts, e: &mut evanesco_nand::snapshot::Enc) {
    for arr in [&c.total, &c.secured, &c.exposed] {
        for &v in arr {
            e.u64(v);
        }
    }
}

fn decode_causes(
    d: &mut evanesco_nand::snapshot::Dec<'_>,
) -> Result<CauseCounts, evanesco_nand::snapshot::SnapshotError> {
    let mut c = CauseCounts::default();
    for arr in [&mut c.total, &mut c.secured, &mut c.exposed] {
        for v in arr.iter_mut() {
            *v = d.u64()?;
        }
    }
    Ok(c)
}

fn encode_histogram(h: &ExposureHistogram, e: &mut evanesco_nand::snapshot::Enc) {
    for &b in &h.buckets {
        e.u64(b);
    }
    e.u64(h.count);
    e.u64(h.sum);
    e.u64(h.max);
}

fn decode_histogram(
    d: &mut evanesco_nand::snapshot::Dec<'_>,
) -> Result<ExposureHistogram, evanesco_nand::snapshot::SnapshotError> {
    let mut h = ExposureHistogram::default();
    for b in h.buckets.iter_mut() {
        *b = d.u64()?;
    }
    h.count = d.u64()?;
    h.sum = d.u64()?;
    h.max = d.u64()?;
    Ok(h)
}

impl FtlObserver for ExposureLedger {
    fn on_program(&mut self, lpa: Lpa, at: GlobalPpa, _relocation: bool, _secure: bool) {
        let file = match self.lpa_file.get(lpa as usize) {
            Some(&f) if f != NO_FILE => f,
            _ => return,
        };
        let spare = &mut self.spare;
        let pages = self
            .phys
            .entry((at.chip, at.ppa.block.0))
            .or_insert_with(|| spare.pop().unwrap_or_default());
        let idx = at.ppa.page.0 as usize;
        if pages.len() <= idx {
            pages.resize(idx + 1, None);
        }
        pages[idx] = Some(PageEntry { file, live: true, exposed_since: None });
        self.files.entry(file).or_default().valid += 1;
        self.note_change(file);
    }

    fn on_invalidate(
        &mut self,
        at: GlobalPpa,
        secure: bool,
        sanitized: bool,
        cause: InvalidateCause,
    ) {
        self.device_causes.note(cause, secure, sanitized);
        let key = (at.chip, at.ppa.block.0);
        let Some(block) = self.phys.get_mut(&key) else { return };
        let idx = at.ppa.page.0 as usize;
        let Some(entry) = block.get_mut(idx).and_then(Option::as_mut) else { return };
        let file = entry.file;
        let mut drop_live = false;
        if entry.live {
            entry.live = false;
            drop_live = true;
        }
        if !sanitized {
            entry.exposed_since = Some(self.tick);
        }
        if sanitized {
            block[idx] = None;
        }
        if drop_live {
            self.files.entry(file).or_default().valid -= 1;
        }
        let f = self.files.entry(file).or_default();
        f.causes.note(cause, secure, sanitized);
        if sanitized {
            // Content immediately unrecoverable: a zero exposure window,
            // and never an invalid version.
            f.exposure.record(0);
        } else {
            f.invalid += 1;
        }
        self.note_change(file);
    }

    fn on_erase(&mut self, chip: usize, block: evanesco_nand::geometry::BlockId) {
        let Some(mut entries) = self.phys.remove(&(chip, block.0)) else { return };
        let tick = self.tick;
        let mut touched = std::mem::take(&mut self.touched);
        touched.clear();
        for entry in entries.iter().filter_map(Option::as_ref) {
            let f = self.files.entry(entry.file).or_default();
            if entry.live {
                f.valid = f.valid.saturating_sub(1);
            } else {
                f.invalid = f.invalid.saturating_sub(1);
            }
            if let Some(since) = entry.exposed_since {
                // The erase finally destroyed this stale version: close
                // its exposure window.
                f.exposure.record(tick - since);
            }
            touched.push(entry.file);
        }
        for &file in &touched {
            self.note_change(file);
        }
        self.touched = touched;
        // Recycle the page table: the next program to a fresh block reuses
        // the allocation instead of growing a new one.
        entries.clear();
        if self.spare.len() < 64 {
            self.spare.push(entries);
        }
    }

    fn on_host_tick(&mut self) {
        self.tick += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evanesco_nand::geometry::{BlockId, Ppa};

    fn at(chip: usize, block: u32, page: u32) -> GlobalPpa {
        GlobalPpa::new(chip, Ppa::new(block, page))
    }

    #[test]
    fn mirrors_vertrace_version_counting() {
        let mut lg = ExposureLedger::new();
        lg.before_write(1, 0, 2, false);
        lg.on_host_tick();
        lg.on_program(0, at(0, 0, 0), false, true);
        lg.on_host_tick();
        lg.on_program(1, at(0, 0, 1), false, true);
        lg.before_write(1, 0, 1, true);
        lg.on_host_tick();
        lg.on_program(0, at(0, 0, 2), false, true);
        lg.on_invalidate(at(0, 0, 0), true, false, InvalidateCause::HostUpdate);
        let f = &lg.files()[&1];
        assert_eq!((f.valid, f.invalid), (2, 1));
        assert!(f.multi_version);
        assert_eq!(f.max_invalid, 1);
    }

    #[test]
    fn cause_attribution_splits_secured_and_exposed() {
        let mut lg = ExposureLedger::new();
        lg.before_write(1, 0, 3, false);
        lg.on_program(0, at(0, 0, 0), false, true);
        lg.on_program(1, at(0, 0, 1), false, true);
        lg.on_program(2, at(0, 0, 2), false, true);
        lg.on_invalidate(at(0, 0, 0), true, true, InvalidateCause::HostUpdate);
        lg.on_invalidate(at(0, 0, 1), true, false, InvalidateCause::Trim);
        lg.on_invalidate(at(0, 0, 2), false, false, InvalidateCause::GcCopy);
        let f = &lg.files()[&1];
        assert_eq!(f.causes.total, [1, 1, 1]);
        assert_eq!(f.causes.secured, [1, 1, 0]);
        assert_eq!(f.causes.exposed, [0, 1, 0]);
        assert_eq!(lg.device_causes.total, [1, 1, 1]);
    }

    #[test]
    fn exposure_windows_measure_invalidate_to_erase() {
        let mut lg = ExposureLedger::new();
        lg.before_write(1, 0, 1, false);
        lg.on_program(0, at(0, 3, 0), false, true);
        for _ in 0..10 {
            lg.on_host_tick();
        }
        lg.on_invalidate(at(0, 3, 0), true, false, InvalidateCause::HostUpdate);
        for _ in 0..5 {
            lg.on_host_tick();
        }
        lg.on_erase(0, BlockId(3)); // exposed ticks 10..15 → window 5
        let f = &lg.files()[&1];
        assert_eq!(f.exposure.count, 1);
        assert_eq!((f.exposure.sum, f.exposure.max), (5, 5));
        // Bucket: 5 ∈ [4, 8) → bucket 3.
        assert_eq!(f.exposure.buckets[3], 1);
    }

    #[test]
    fn sanitized_invalidations_record_zero_windows() {
        let mut lg = ExposureLedger::new();
        lg.before_write(1, 0, 1, false);
        lg.on_program(0, at(0, 0, 0), false, true);
        lg.on_invalidate(at(0, 0, 0), true, true, InvalidateCause::Trim);
        let f = &lg.files()[&1];
        assert_eq!((f.valid, f.invalid), (0, 0));
        assert_eq!(f.exposure.count, 1);
        assert_eq!(f.exposure.buckets[0], 1);
        assert_eq!(f.exposure.zero_fraction(), 1.0);
    }

    #[test]
    fn finalize_right_censors_open_windows() {
        let mut lg = ExposureLedger::new();
        lg.before_write(1, 0, 1, false);
        lg.on_program(0, at(0, 0, 0), false, true);
        lg.on_invalidate(at(0, 0, 0), true, false, InvalidateCause::HostUpdate);
        for _ in 0..7 {
            lg.on_host_tick();
        }
        lg.finalize();
        let f = &lg.files()[&1];
        assert_eq!(f.exposure.count, 1);
        assert_eq!(f.exposure.sum, 7);
        // Idempotent: a second finalize records nothing new.
        lg.finalize();
        assert_eq!(lg.files()[&1].exposure.count, 1);
    }

    #[test]
    fn snapshot_roundtrip_preserves_ledger_and_report() {
        let mut lg = ExposureLedger::new();
        lg.before_write(1, 0, 2, false);
        lg.on_host_tick();
        lg.on_program(0, at(0, 0, 0), false, true);
        lg.on_program(1, at(0, 0, 1), false, true);
        lg.before_write(2, 10, 1, false);
        lg.on_program(10, at(0, 1, 0), false, true);
        lg.before_write(2, 10, 1, true);
        lg.on_host_tick();
        lg.on_program(10, at(0, 1, 1), false, true);
        lg.on_invalidate(at(0, 1, 0), true, false, InvalidateCause::HostUpdate);
        let mut e = evanesco_nand::snapshot::Enc::new();
        lg.encode_state(&mut e);
        let bytes = e.into_bytes();
        let mut d = evanesco_nand::snapshot::Dec::new(&bytes);
        let mut back = ExposureLedger::decode_state(&mut d).unwrap();
        d.finish().unwrap();
        // Continue both in lockstep: closing the open exposure window via
        // an erase must land identically.
        for lg2 in [&mut lg, &mut back] {
            for _ in 0..4 {
                lg2.on_host_tick();
            }
            lg2.on_erase(0, BlockId(1));
        }
        assert_eq!(lg.report(1000), back.report(1000));
        // A restored ledger re-encodes byte-identically.
        let re = |l: &ExposureLedger| {
            let mut e = evanesco_nand::snapshot::Enc::new();
            l.encode_state(&mut e);
            e.into_bytes()
        };
        assert_eq!(re(&lg), re(&back));
    }

    #[test]
    fn report_aggregates_like_vertrace() {
        let mut lg = ExposureLedger::new();
        // UV file.
        lg.before_write(1, 0, 2, false);
        lg.on_program(0, at(0, 0, 0), false, true);
        lg.on_program(1, at(0, 0, 1), false, true);
        // MV file with one exposed stale version.
        lg.before_write(2, 10, 1, false);
        lg.on_program(10, at(0, 1, 0), false, true);
        lg.before_write(2, 10, 1, true);
        lg.on_program(10, at(0, 1, 1), false, true);
        lg.on_invalidate(at(0, 1, 0), true, false, InvalidateCause::HostUpdate);
        let report = lg.report(1000);
        assert_eq!(report.uv.stats.n_files, 1);
        assert_eq!(report.mv.stats.n_files, 1);
        assert_eq!(report.uv.stats.vaf_max, 0.0);
        assert!(report.mv.stats.vaf_max > 0.0);
        assert_eq!(report.mv.causes.exposed, [1, 0, 0]);
        assert_eq!(report.mv.exposure.count, 1);
    }
}

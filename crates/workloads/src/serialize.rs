//! Plain-text trace serialization.
//!
//! One line per operation, whitespace-separated — diff-friendly, grep-able,
//! and free of extra dependencies:
//!
//! ```text
//! # trace <name>
//! # phase prefill
//! W <file> <lpa> <npages> <secure:0|1> <overwrite:0|1>
//! # phase main
//! R <lpa> <npages>
//! T <file> <lpa> <npages>
//! ```

use crate::trace::{Trace, TraceOp};
use std::error::Error;
use std::fmt;

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseTraceError {}

fn op_line(op: &TraceOp) -> String {
    match *op {
        TraceOp::Write { file, lpa, npages, secure, overwrite } => {
            format!("W {file} {lpa} {npages} {} {}", secure as u8, overwrite as u8)
        }
        TraceOp::Read { lpa, npages } => format!("R {lpa} {npages}"),
        TraceOp::Trim { file, lpa, npages } => format!("T {file} {lpa} {npages}"),
    }
}

/// Serializes a trace to the text format.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&format!("# trace {}\n", trace.name));
    out.push_str("# phase prefill\n");
    for op in &trace.prefill {
        out.push_str(&op_line(op));
        out.push('\n');
    }
    out.push_str("# phase main\n");
    for op in &trace.ops {
        out.push_str(&op_line(op));
        out.push('\n');
    }
    out
}

/// Parses a trace from the text format.
///
/// # Errors
///
/// Returns [`ParseTraceError`] with the offending line on malformed input.
pub fn from_text(text: &str) -> Result<Trace, ParseTraceError> {
    let mut trace = Trace::default();
    let mut in_main = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        let err = |reason: &str| ParseTraceError { line: lineno, reason: reason.to_string() };
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(name) = rest.strip_prefix("trace ") {
                trace.name = name.to_string();
            } else if rest == "phase main" {
                in_main = true;
            } else if rest == "phase prefill" {
                in_main = false;
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().ok_or_else(|| err("empty op"))?;
        let mut num = |what: &str| -> Result<u64, ParseTraceError> {
            parts
                .next()
                .ok_or_else(|| err(&format!("missing {what}")))?
                .parse()
                .map_err(|_| err(&format!("bad {what}")))
        };
        let op = match kind {
            "W" => {
                let file = num("file")? as u32;
                let lpa = num("lpa")?;
                let npages = num("npages")?;
                let secure = num("secure flag")? != 0;
                let overwrite = num("overwrite flag")? != 0;
                TraceOp::Write { file, lpa, npages, secure, overwrite }
            }
            "R" => TraceOp::Read { lpa: num("lpa")?, npages: num("npages")? },
            "T" => {
                let file = num("file")? as u32;
                TraceOp::Trim { file, lpa: num("lpa")?, npages: num("npages")? }
            }
            other => return Err(err(&format!("unknown op kind '{other}'"))),
        };
        if in_main {
            trace.ops.push(op);
        } else {
            trace.prefill.push(op);
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::spec::WorkloadSpec;

    #[test]
    fn roundtrip_generated_trace() {
        let trace = generate(&WorkloadSpec::file_server(), 2048, 1500, 7);
        let text = to_text(&trace);
        let back = from_text(&text).unwrap();
        assert_eq!(back.name, trace.name);
        assert_eq!(back.prefill, trace.prefill);
        assert_eq!(back.ops, trace.ops);
    }

    #[test]
    fn parses_hand_written_trace() {
        let text = "\
# trace handmade
# phase prefill
W 1 0 4 1 0
# phase main
R 0 2
T 1 0 4
";
        let t = from_text(text).unwrap();
        assert_eq!(t.name, "handmade");
        assert_eq!(t.prefill.len(), 1);
        assert_eq!(t.ops.len(), 2);
        assert_eq!(t.ops[1], TraceOp::Trim { file: 1, lpa: 0, npages: 4 });
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let bad = "# trace x\n# phase main\nW 1 0\n";
        let err = from_text(bad).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));

        let unknown = "# phase main\nQ 1 2\n";
        assert!(from_text(unknown).unwrap_err().to_string().contains("unknown op"));
        assert!(from_text("# phase main\nW 1 0 4 2x 0\n").is_err());
    }

    #[test]
    fn empty_and_comment_lines_are_skipped() {
        let t = from_text("\n# just a comment\n\n").unwrap();
        assert!(t.prefill.is_empty());
        assert!(t.ops.is_empty());
    }
}

//! Open-loop multi-tenant fleet traffic: Zipf-distributed tenant
//! popularity over a diurnal (sinusoidal-rate) Poisson arrival process.
//!
//! The single-device generators in [`crate::generate`] are closed-loop:
//! the next request exists only once the previous one completed. A fleet
//! front end is the opposite — tenants submit on their own schedule and
//! the device absorbs (or queues) the offered load. This module produces
//! that offered load as per-device request streams:
//!
//! * **tenant popularity** is Zipf(s): tenant ranks are weighted
//!   `1/(rank+1)^s`, so a handful of hot tenants dominate — the classic
//!   multi-tenant skew;
//! * **arrivals** are a non-homogeneous Poisson process whose rate swings
//!   sinusoidally around the base rate (the diurnal cycle of a real
//!   fleet), sampled by inverting per-event exponential gaps at the
//!   current instantaneous rate;
//! * every request addresses its tenant's **namespace-relative** LPA
//!   window (`[0, window_pages)`); the fleet layer rebases onto the
//!   device's physical namespace map, so the generator never needs to
//!   know where (or with whom) a tenant is placed.
//!
//! Determinism: each device's stream is derived from `seed ⊕ device`, so
//! per-device traces are independent of how many devices exist, how they
//! are sharded over threads, and in what order they are generated.

use evanesco_nand::timing::Nanos;
use evanesco_ssd::HostOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One tenant's traffic profile (what it sends, not how it is policed —
/// QoS lives in `evanesco-fleet`).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantProfile {
    /// Human-readable tenant name (becomes a Prometheus label; the fleet
    /// scrape escapes it).
    pub name: String,
    /// Request size in pages, sampled uniformly from this inclusive range.
    pub req_pages: (u64, u64),
    /// Fraction of requests that are writes.
    pub write_frac: f64,
    /// Fraction of requests that are trims (rest after writes are reads).
    pub trim_frac: f64,
    /// Whether writes carry the paper's security requirement (non-`O_INSEC`).
    pub secure: bool,
    /// Relative share of the fleet-wide arrival rate this tenant offers
    /// (scaled by its Zipf rank weight).
    pub offered_share: f64,
}

impl TenantProfile {
    /// A well-behaved tenant: small mixed read/write load, secure writes.
    pub fn victim(name: &str) -> Self {
        TenantProfile {
            name: name.into(),
            req_pages: (1, 4),
            write_frac: 0.5,
            trim_frac: 0.05,
            secure: true,
            offered_share: 1.0,
        }
    }

    /// A noisy neighbor driving a sanitization storm: large secure
    /// overwrites plus heavy trims, so every invalidation drags lock
    /// (pLock/bLock) traffic behind it.
    pub fn noisy_neighbor(name: &str) -> Self {
        TenantProfile {
            name: name.into(),
            req_pages: (8, 16),
            write_frac: 0.6,
            trim_frac: 0.35,
            secure: true,
            offered_share: 8.0,
        }
    }

    /// A pure sanitization storm: trim-dominated secure traffic (just
    /// enough writes to keep pages mapped), so nearly every request
    /// injects immediate pLock/bLock work with minimal GC pressure —
    /// the cleanest stimulus for attributing neighbor tail latency to
    /// sanitization-lock interference rather than copyback traffic.
    pub fn sanitize_storm(name: &str) -> Self {
        TenantProfile {
            name: name.into(),
            req_pages: (8, 16),
            write_frac: 0.15,
            trim_frac: 0.8,
            secure: true,
            offered_share: 8.0,
        }
    }
}

/// Fleet-wide arrival-process parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// The tenants, in Zipf rank order (rank 0 is the most popular).
    pub tenants: Vec<TenantProfile>,
    /// Zipf skew `s` (0 = uniform popularity; ~1 = classic heavy skew).
    pub zipf_s: f64,
    /// Mean arrival rate per device, requests per second, averaged over a
    /// diurnal period.
    pub base_rate_per_sec: f64,
    /// Diurnal swing in `[0, 1)`: instantaneous rate is
    /// `base × (1 + amplitude × sin(2πt / period))`.
    pub diurnal_amplitude: f64,
    /// Diurnal period in simulated time.
    pub diurnal_period: Nanos,
    /// Requests generated per device.
    pub requests_per_device: usize,
    /// Base seed; device `d` uses `seed ⊕ d`.
    pub seed: u64,
}

impl TrafficConfig {
    /// A small mixed fleet: one noisy neighbor (rank 0, hottest) plus
    /// `victims` well-behaved tenants.
    pub fn noisy_neighbor(victims: usize, requests_per_device: usize, seed: u64) -> Self {
        let mut tenants = vec![TenantProfile::noisy_neighbor("storm")];
        tenants.extend((0..victims).map(|i| TenantProfile::victim(&format!("victim-{i}"))));
        TrafficConfig {
            tenants,
            zipf_s: 0.9,
            base_rate_per_sec: 30_000.0,
            diurnal_amplitude: 0.5,
            diurnal_period: Nanos::from_micros(200_000),
            requests_per_device: seed_independent_len(requests_per_device),
            seed,
        }
    }

    /// A [`TenantProfile::sanitize_storm`] neighbor (rank 0) plus
    /// `victims` well-behaved tenants: the storm's trim-heavy secure
    /// stream keeps the device's lock traffic — not its GC — as the
    /// dominant interference source on victims.
    pub fn sanitize_storm(victims: usize, requests_per_device: usize, seed: u64) -> Self {
        let mut tenants = vec![TenantProfile::sanitize_storm("storm")];
        tenants.extend((0..victims).map(|i| TenantProfile::victim(&format!("victim-{i}"))));
        TrafficConfig {
            tenants,
            zipf_s: 0.9,
            base_rate_per_sec: 30_000.0,
            diurnal_amplitude: 0.5,
            diurnal_period: Nanos::from_micros(200_000),
            requests_per_device: seed_independent_len(requests_per_device),
            seed,
        }
    }

    /// A balanced fleet of equal victims (no storm).
    pub fn balanced(tenants: usize, requests_per_device: usize, seed: u64) -> Self {
        TrafficConfig {
            tenants: (0..tenants).map(|i| TenantProfile::victim(&format!("tenant-{i}"))).collect(),
            zipf_s: 0.0,
            base_rate_per_sec: 20_000.0,
            diurnal_amplitude: 0.3,
            diurnal_period: Nanos::from_micros(200_000),
            requests_per_device: seed_independent_len(requests_per_device),
            seed,
        }
    }
}

fn seed_independent_len(n: usize) -> usize {
    n.max(1)
}

/// One request of a fleet trace. `op` addresses the tenant's namespace
/// window, i.e. LPAs in `[0, window_pages)`; the fleet layer rebases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantOp {
    /// Index into [`TrafficConfig::tenants`].
    pub tenant: usize,
    /// When the tenant handed the request to the front end.
    pub arrival: Nanos,
    /// The request, namespace-relative.
    pub op: HostOp,
}

/// Generates per-device open-loop request streams: `devices` traces of
/// [`TrafficConfig::requests_per_device`] requests each, every request
/// confined to `[0, window_pages)` within its tenant's namespace.
///
/// # Panics
///
/// Panics on an empty tenant list, a non-positive base rate, or a window
/// too small for the largest request.
pub fn generate_fleet(
    cfg: &TrafficConfig,
    devices: usize,
    window_pages: u64,
) -> Vec<Vec<TenantOp>> {
    assert!(!cfg.tenants.is_empty(), "fleet traffic needs at least one tenant");
    assert!(cfg.base_rate_per_sec > 0.0, "arrival rate must be positive");
    assert!(
        (0.0..1.0).contains(&cfg.diurnal_amplitude),
        "diurnal amplitude must be in [0, 1), got {}",
        cfg.diurnal_amplitude
    );
    let max_req = cfg.tenants.iter().map(|t| t.req_pages.1).max().unwrap();
    assert!(
        window_pages >= max_req,
        "namespace window of {window_pages} pages cannot hold a {max_req}-page request"
    );
    // Zipf × offered-share tenant weights, folded into a CDF once.
    let weights: Vec<f64> = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(rank, t)| t.offered_share / ((rank + 1) as f64).powf(cfg.zipf_s))
        .collect();
    let total: f64 = weights.iter().sum();
    let cdf: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w / total;
            Some(*acc)
        })
        .collect();
    (0..devices).map(|d| device_stream(cfg, &cdf, window_pages, d)).collect()
}

fn device_stream(
    cfg: &TrafficConfig,
    cdf: &[f64],
    window_pages: u64,
    device: usize,
) -> Vec<TenantOp> {
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ (device as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut t_ns = 0u64;
    let period = cfg.diurnal_period.0.max(1) as f64;
    let mut out = Vec::with_capacity(cfg.requests_per_device);
    for _ in 0..cfg.requests_per_device {
        // Exponential gap at the instantaneous (diurnal) rate. The
        // inversion uses the rate at the *current* instant — a standard
        // thinning-free approximation that keeps the stream a pure
        // function of (seed, device).
        let phase = (t_ns as f64 / period) * std::f64::consts::TAU;
        let rate = cfg.base_rate_per_sec * (1.0 + cfg.diurnal_amplitude * phase.sin());
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap_secs = -u.ln() / rate.max(1e-6);
        t_ns = t_ns.saturating_add((gap_secs * 1e9).ceil() as u64);

        let pick: f64 = rng.gen_range(0.0..1.0);
        let tenant = cdf.iter().position(|&c| pick < c).unwrap_or(cdf.len() - 1);
        let profile = &cfg.tenants[tenant];
        let npages = rng.gen_range(profile.req_pages.0..=profile.req_pages.1);
        let lpa = rng.gen_range(0..=(window_pages - npages));
        let kind: f64 = rng.gen_range(0.0..1.0);
        let op = if kind < profile.write_frac {
            HostOp::Write { lpa, npages, secure: profile.secure }
        } else if kind < profile.write_frac + profile.trim_frac {
            HostOp::Trim { lpa, npages }
        } else {
            HostOp::Read { lpa, npages }
        };
        out.push(TenantOp { tenant, arrival: Nanos(t_ns), op });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_device_independent() {
        let cfg = TrafficConfig::noisy_neighbor(3, 500, 42);
        let a = generate_fleet(&cfg, 4, 1 << 12);
        let b = generate_fleet(&cfg, 2, 1 << 12);
        assert_eq!(a[0], b[0], "device 0's stream ignores fleet size");
        assert_eq!(a[1], b[1]);
        assert_ne!(a[0], a[1], "devices draw independent streams");
        let again = generate_fleet(&cfg, 4, 1 << 12);
        assert_eq!(a, again, "same seed, same fleet");
    }

    #[test]
    fn arrivals_are_monotone_and_windows_respected() {
        let cfg = TrafficConfig::noisy_neighbor(3, 1000, 7);
        let window = 1 << 10;
        for trace in generate_fleet(&cfg, 2, window) {
            let mut last = Nanos::ZERO;
            for req in &trace {
                assert!(req.arrival >= last, "arrivals are nondecreasing");
                last = req.arrival;
                let (lpa, n) = req.op.lpa_range();
                assert!(lpa + n <= window, "request escapes its namespace window");
                assert!(req.tenant < cfg.tenants.len());
            }
        }
    }

    #[test]
    fn sanitize_storm_is_trim_dominated() {
        let cfg = TrafficConfig::sanitize_storm(2, 3000, 11);
        let trace = &generate_fleet(&cfg, 1, 1 << 12)[0];
        let (mut trims, mut total) = (0usize, 0usize);
        for req in trace.iter().filter(|r| r.tenant == 0) {
            total += 1;
            if matches!(req.op, HostOp::Trim { .. }) {
                trims += 1;
            }
        }
        assert!(total > 0);
        assert!(
            trims * 2 > total,
            "the storm tenant mostly trims ({trims}/{total}), priming lock traffic"
        );
    }

    #[test]
    fn zipf_skew_makes_rank_zero_hottest() {
        let cfg = TrafficConfig::noisy_neighbor(4, 4000, 9);
        let trace = &generate_fleet(&cfg, 1, 1 << 12)[0];
        let mut counts = vec![0usize; cfg.tenants.len()];
        for req in trace {
            counts[req.tenant] += 1;
        }
        assert!(
            counts[0] > counts[1..].iter().copied().max().unwrap(),
            "the storm tenant (rank 0, 8x share) dominates: {counts:?}"
        );
    }
}

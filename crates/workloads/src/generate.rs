//! The trace-generation engine: turns a [`WorkloadSpec`] into a concrete,
//! seeded, replayable [`Trace`].
//!
//! Methodology follows the paper's §3/§7 setup: prefill the device to the
//! target utilization, then generate write events per the workload's mix
//! until the measured phase has written the requested volume, interleaving
//! reads at the workload's read:write ratio and keeping utilization around
//! the target with watermark-driven deletions.

use crate::fs::FileModel;
use crate::spec::WorkloadSpec;
use crate::trace::{Trace, TraceOp};
use evanesco_ftl::Lpa;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// High watermark above which the generator deletes files down to the
/// target utilization.
const HIGH_WATERMARK_SLACK: f64 = 0.05;

/// Generates a trace for `spec` over a logical space of `logical_pages`,
/// writing `main_write_pages` in the measured phase.
///
/// Deterministic for a given `(spec, logical_pages, main_write_pages,
/// seed)`.
pub fn generate(
    spec: &WorkloadSpec,
    logical_pages: u64,
    main_write_pages: u64,
    seed: u64,
) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    // Reads draw from their own stream so the number of interleaved read
    // bursts (which varies with the read:write ratio) cannot perturb the
    // write-side event sequence.
    let mut read_rng = StdRng::seed_from_u64(seed ^ 0x5245_4144); // "READ"
    let mut fs = FileModel::new(logical_pages);
    let mut trace = Trace { name: spec.name.to_string(), ..Default::default() };

    // ---- Prefill to target utilization with file creations.
    let mut prefill_ops = Vec::new();
    while fs.utilization() < spec.target_utilization {
        let size = sample_range(&mut rng, spec.file_pages).min(fs.free_pages()).max(1);
        if fs.free_pages() == 0 {
            break;
        }
        let secure = rng.gen::<f64>() < spec.secure_fraction;
        let id = fs.create(size, secure).expect("space checked");
        emit_write(&mut prefill_ops, &fs, id, false);
    }
    trace.prefill = prefill_ops;

    // ---- Measured phase.
    let mut written = 0u64;
    let mut read_credit = 0.0f64;
    let mut guard = 0u64;
    while written < main_write_pages {
        guard += 1;
        assert!(
            guard < main_write_pages * 64 + 1_000_000,
            "generator failed to make progress for {}",
            spec.name
        );
        // Watermark deletions keep utilization near target.
        while fs.utilization() > spec.target_utilization + HIGH_WATERMARK_SLACK {
            let Some(id) = fs.random_file(&mut rng) else { break };
            emit_delete(&mut trace.ops, &mut fs, id);
        }
        let ev = pick_event(&mut rng, spec);
        let pages = match ev {
            Event::Create => {
                let size = sample_range(&mut rng, spec.file_pages);
                if fs.free_pages() < size {
                    // Make room first.
                    if let Some(id) = fs.random_file(&mut rng) {
                        emit_delete(&mut trace.ops, &mut fs, id);
                    }
                    continue;
                }
                let secure = rng.gen::<f64>() < spec.secure_fraction;
                let id = fs.create(size, secure).expect("space checked");
                emit_write(&mut trace.ops, &fs, id, false)
            }
            Event::Append => {
                let Some(id) = fs.random_file(&mut rng) else { continue };
                let n = sample_range(&mut rng, spec.write_pages);
                if fs.free_pages() < n {
                    continue;
                }
                let secure = fs.file(id).expect("live").secure;
                let new = fs.append(id, n).expect("space checked");
                emit_runs(&mut trace.ops, id, &new, secure, false)
            }
            Event::Overwrite => {
                let Some(id) = fs.random_file(&mut rng) else { continue };
                let n = sample_range(&mut rng, spec.write_pages);
                let Some(pages) = fs.overwrite_range(&mut rng, id, n) else { continue };
                let secure = fs.file(id).expect("live").secure;
                emit_runs(&mut trace.ops, id, &pages, secure, true)
            }
            Event::Delete => {
                let Some(id) = fs.random_file(&mut rng) else { continue };
                emit_delete(&mut trace.ops, &mut fs, id);
                0
            }
        };
        written += pages;

        // Interleave reads by volume ratio.
        read_credit += pages as f64 * spec.reads_per_write;
        while read_credit >= 1.0 {
            let Some(id) = fs.random_file(&mut read_rng) else { break };
            let f = fs.file(id).expect("live");
            // Cap the burst at the outstanding credit: otherwise a single
            // large-file read (Mobile reads up to 512 pages against a 0.02
            // ratio) overshoots the requested read volume by orders of
            // magnitude.
            let n = sample_range(&mut read_rng, spec.write_pages)
                .min(read_credit.ceil() as u64)
                .min(f.lpas.len() as u64)
                .max(1);
            let start = read_rng.gen_range(0..f.lpas.len() - (n as usize - 1));
            let lpas = &f.lpas[start..start + n as usize];
            for (lpa, len) in FileModel::contiguous_runs(lpas) {
                trace.ops.push(TraceOp::Read { lpa, npages: len });
            }
            read_credit -= n as f64;
        }
    }
    trace
}

enum Event {
    Create,
    Append,
    Overwrite,
    Delete,
}

fn pick_event(rng: &mut StdRng, spec: &WorkloadSpec) -> Event {
    let total = spec.mix.total();
    let mut x = rng.gen_range(0..total);
    if x < spec.mix.create {
        return Event::Create;
    }
    x -= spec.mix.create;
    if x < spec.mix.append {
        return Event::Append;
    }
    x -= spec.mix.append;
    if x < spec.mix.overwrite {
        return Event::Overwrite;
    }
    Event::Delete
}

fn sample_range(rng: &mut StdRng, (lo, hi): (u64, u64)) -> u64 {
    rng.gen_range(lo..=hi)
}

/// Emits the full current content of a (new) file as write runs.
fn emit_write(ops: &mut Vec<TraceOp>, fs: &FileModel, id: u32, overwrite: bool) -> u64 {
    let f = fs.file(id).expect("live file");
    emit_runs(ops, id, &f.lpas.clone(), f.secure, overwrite)
}

fn emit_runs(
    ops: &mut Vec<TraceOp>,
    file: u32,
    lpas: &[Lpa],
    secure: bool,
    overwrite: bool,
) -> u64 {
    for (lpa, npages) in FileModel::contiguous_runs(lpas) {
        ops.push(TraceOp::Write { file, lpa, npages, secure, overwrite });
    }
    lpas.len() as u64
}

fn emit_delete(ops: &mut Vec<TraceOp>, fs: &mut FileModel, id: u32) {
    let lpas = fs.delete(id).expect("live file");
    for (lpa, npages) in FileModel::contiguous_runs(&lpas) {
        ops.push(TraceOp::Trim { file: id, lpa, npages });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOGICAL: u64 = 4096;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::mail_server();
        let a = generate(&spec, LOGICAL, 2000, 7);
        let b = generate(&spec, LOGICAL, 2000, 7);
        assert_eq!(a.ops.len(), b.ops.len());
        assert_eq!(a.prefill.len(), b.prefill.len());
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = WorkloadSpec::mail_server();
        let a = generate(&spec, LOGICAL, 2000, 7);
        let b = generate(&spec, LOGICAL, 2000, 8);
        assert_ne!(a.ops, b.ops);
    }

    #[test]
    fn main_phase_reaches_requested_volume() {
        for spec in WorkloadSpec::table2() {
            let t = generate(&spec, LOGICAL, 3000, 1);
            assert!(
                t.main_write_pages() >= 3000,
                "{}: only {} pages",
                spec.name,
                t.main_write_pages()
            );
            // Prefill roughly hits the target utilization.
            assert!(
                t.prefill_write_pages() as f64 >= 0.74 * LOGICAL as f64,
                "{}: prefill {}",
                spec.name,
                t.prefill_write_pages()
            );
        }
    }

    #[test]
    fn read_volume_tracks_ratio() {
        for spec in WorkloadSpec::table2() {
            let t = generate(&spec, LOGICAL, 5000, 3);
            let written = t.main_write_pages() as f64;
            let read: u64 = t
                .ops
                .iter()
                .map(|op| match op {
                    TraceOp::Read { npages, .. } => *npages,
                    _ => 0,
                })
                .sum();
            let ratio = read as f64 / written;
            assert!(
                (ratio - spec.reads_per_write).abs() < 0.25 * spec.reads_per_write.max(0.05),
                "{}: read ratio {ratio} vs spec {}",
                spec.name,
                spec.reads_per_write
            );
        }
    }

    #[test]
    fn addresses_stay_in_bounds() {
        for spec in WorkloadSpec::table2() {
            let t = generate(&spec, LOGICAL, 2000, 5);
            for op in t.prefill.iter().chain(&t.ops) {
                let (lpa, n) = match *op {
                    TraceOp::Write { lpa, npages, .. } => (lpa, npages),
                    TraceOp::Read { lpa, npages } => (lpa, npages),
                    TraceOp::Trim { lpa, npages, .. } => (lpa, npages),
                };
                assert!(lpa + n <= LOGICAL, "{}: op out of bounds", spec.name);
                assert!(n > 0);
            }
        }
    }

    #[test]
    fn db_server_emits_overwrites_mobile_does_not() {
        let db = generate(&WorkloadSpec::db_server(), LOGICAL, 3000, 1);
        let mobile = generate(&WorkloadSpec::mobile(), LOGICAL, 3000, 1);
        let count_ow = |t: &Trace| {
            t.ops.iter().filter(|op| matches!(op, TraceOp::Write { overwrite: true, .. })).count()
        };
        assert!(count_ow(&db) > 0);
        assert_eq!(count_ow(&mobile), 0);
        // Mobile deletes whole (large) files.
        assert!(db.ops.iter().any(|op| matches!(op, TraceOp::Trim { .. })));
    }

    #[test]
    fn secure_fraction_zero_marks_nothing_secure() {
        let spec = WorkloadSpec::file_server().with_secure_fraction(0.0);
        let t = generate(&spec, LOGICAL, 2000, 2);
        for op in t.prefill.iter().chain(&t.ops) {
            if let TraceOp::Write { secure, .. } = op {
                assert!(!secure);
            }
        }
    }
}

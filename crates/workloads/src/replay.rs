//! Trace replay against the SSD emulator, with measured-phase metric
//! isolation and optional VerTrace attachment.

use crate::ledger::ExposureLedger;
use crate::trace::{Trace, TraceOp};
use crate::vertrace::VerTrace;
use evanesco_ftl::observer::{FtlObserver, NullObserver, Tee};
use evanesco_ssd::{Emulator, RunResult};

/// Hooks a replay observer needs beyond the FTL events: file-level context.
pub trait ReplayObserver: FtlObserver {
    /// Called before a host write of `[lpa, lpa+n)` for `file`.
    fn before_write(&mut self, _file: u32, _lpa: u64, _npages: u64, _overwrite: bool) {}
    /// Called before a host trim of `[lpa, lpa+n)` for `file`.
    fn before_trim(&mut self, _file: u32, _lpa: u64, _npages: u64) {}
}

impl ReplayObserver for NullObserver {}

impl ReplayObserver for VerTrace {
    fn before_write(&mut self, file: u32, lpa: u64, npages: u64, overwrite: bool) {
        VerTrace::before_write(self, file, lpa, npages, overwrite);
    }
    fn before_trim(&mut self, file: u32, lpa: u64, npages: u64) {
        VerTrace::before_trim(self, file, lpa, npages);
    }
}

impl ReplayObserver for ExposureLedger {
    fn before_write(&mut self, file: u32, lpa: u64, npages: u64, overwrite: bool) {
        ExposureLedger::before_write(self, file, lpa, npages, overwrite);
    }
    fn before_trim(&mut self, file: u32, lpa: u64, npages: u64) {
        ExposureLedger::before_trim(self, file, lpa, npages);
    }
}

impl<O: ReplayObserver> ReplayObserver for &mut O {
    fn before_write(&mut self, file: u32, lpa: u64, npages: u64, overwrite: bool) {
        (**self).before_write(file, lpa, npages, overwrite);
    }
    fn before_trim(&mut self, file: u32, lpa: u64, npages: u64) {
        (**self).before_trim(file, lpa, npages);
    }
}

/// Attach two replay observers to one run (e.g. the live
/// [`ExposureLedger`] and the offline [`VerTrace`], for cross-checking).
impl<A: ReplayObserver, B: ReplayObserver> ReplayObserver for Tee<A, B> {
    fn before_write(&mut self, file: u32, lpa: u64, npages: u64, overwrite: bool) {
        self.0.before_write(file, lpa, npages, overwrite);
        self.1.before_write(file, lpa, npages, overwrite);
    }
    fn before_trim(&mut self, file: u32, lpa: u64, npages: u64) {
        self.0.before_trim(file, lpa, npages);
        self.1.before_trim(file, lpa, npages);
    }
}

/// Replays a trace, returning the **measured-phase** metrics (prefill is
/// executed but excluded, as in the paper's steady-state methodology).
pub fn replay(ssd: &mut Emulator, trace: &Trace) -> RunResult {
    replay_with(ssd, trace, &mut NullObserver)
}

/// [`replay`] with an observer (e.g. [`VerTrace`]) attached to both phases.
pub fn replay_with<O: ReplayObserver>(ssd: &mut Emulator, trace: &Trace, obs: &mut O) -> RunResult {
    for op in &trace.prefill {
        apply(ssd, obs, op);
    }
    let baseline = ssd.result();
    for op in &trace.ops {
        apply(ssd, obs, op);
    }
    ssd.result().since(&baseline)
}

fn apply<O: ReplayObserver>(ssd: &mut Emulator, obs: &mut O, op: &TraceOp) {
    match *op {
        TraceOp::Write { file, lpa, npages, secure, overwrite } => {
            obs.before_write(file, lpa, npages, overwrite);
            ssd.write_with(obs, lpa, npages, secure);
        }
        TraceOp::Read { lpa, npages } => {
            ssd.read(lpa, npages);
        }
        TraceOp::Trim { file, lpa, npages } => {
            obs.before_trim(file, lpa, npages);
            ssd.trim_with(obs, lpa, npages);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::spec::WorkloadSpec;
    use evanesco_ftl::SanitizePolicy;
    use evanesco_ssd::SsdConfig;

    fn small_ssd(policy: SanitizePolicy) -> Emulator {
        let mut cfg = SsdConfig::tiny_for_tests();
        cfg.track_tags = false;
        cfg.stale_audit = false;
        Emulator::new(cfg, policy)
    }

    #[test]
    fn replay_measures_only_main_phase() {
        let mut ssd = small_ssd(SanitizePolicy::none());
        let logical = ssd.logical_pages();
        let trace = generate(&WorkloadSpec::mail_server(), logical, 300, 1);
        let r = replay(&mut ssd, &trace);
        assert!(r.ftl.host_write_pages >= 300);
        // The prefill wrote ~75% of the space but is excluded.
        let full = ssd.result();
        assert!(full.ftl.host_write_pages > r.ftl.host_write_pages);
        assert!(r.iops > 0.0);
    }

    #[test]
    fn replay_with_vertrace_produces_report() {
        let mut ssd = small_ssd(SanitizePolicy::none());
        let logical = ssd.logical_pages();
        let trace = generate(&WorkloadSpec::db_server(), logical, 400, 2);
        let mut vt = VerTrace::new();
        replay_with(&mut ssd, &trace, &mut vt);
        let report = vt.report(logical);
        assert!(report.mv.n_files > 0, "DBServer must produce MV files");
        assert!(report.mv.vaf_max > 0.0, "overwrites must leave stale versions");
    }

    #[test]
    fn secssd_replay_keeps_mv_files_version_free() {
        // With Evanesco, every stale version is sanitized at invalidation, so
        // even heavily-overwritten files have VAF 0.
        let mut ssd = small_ssd(SanitizePolicy::evanesco());
        let logical = ssd.logical_pages();
        let trace = generate(&WorkloadSpec::db_server(), logical, 400, 2);
        let mut vt = VerTrace::new();
        replay_with(&mut ssd, &trace, &mut vt);
        let report = vt.report(logical);
        assert_eq!(report.mv.vaf_max, 0.0, "secSSD must leave no stale versions");
        assert_eq!(report.uv.vaf_max, 0.0);
    }

    #[test]
    fn ledger_matches_vertrace_in_one_run() {
        use crate::ledger::ExposureLedger;
        let mut ssd = small_ssd(SanitizePolicy::none());
        let logical = ssd.logical_pages();
        let trace = generate(&WorkloadSpec::db_server(), logical, 500, 3);
        let mut vt = VerTrace::new();
        let mut lg = ExposureLedger::new();
        replay_with(&mut ssd, &trace, &mut Tee(&mut lg, &mut vt));
        let offline = vt.report(logical);
        let live = lg.report(logical);
        // The ledger uses VerTrace's counting rules, so the Table-1 class
        // stats from one shared run must agree (up to float summation
        // order — the per-file maps iterate in different orders).
        let close = |a: crate::vertrace::ClassStats, b: crate::vertrace::ClassStats| {
            assert_eq!(a.n_files, b.n_files);
            for (x, y) in [
                (a.vaf_avg, b.vaf_avg),
                (a.vaf_max, b.vaf_max),
                (a.tinsec_avg, b.tinsec_avg),
                (a.tinsec_max, b.tinsec_max),
            ] {
                assert!((x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0), "{x} vs {y}");
            }
        };
        close(live.uv.stats, offline.uv);
        close(live.mv.stats, offline.mv);
        assert!(live.mv.stats.vaf_max > 0.0);
        // And the attribution layer saw every exposed retirement.
        let exposed: u64 = live.device_causes.exposed.iter().sum();
        assert!(exposed > 0);
    }

    #[test]
    fn deterministic_replay_results() {
        let spec = WorkloadSpec::file_server();
        let run = || {
            let mut ssd = small_ssd(SanitizePolicy::evanesco());
            let logical = ssd.logical_pages();
            let trace = generate(&spec, logical, 300, 9);
            replay(&mut ssd, &trace)
        };
        let a = run();
        let b = run();
        assert_eq!(a.ftl, b.ftl);
        assert_eq!(a.sim_time, b.sim_time);
    }
}

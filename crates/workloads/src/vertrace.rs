//! VerTrace — the paper's data-versioning measurement tool (§3).
//!
//! VerTrace annotates every physical page with the file it belongs to and
//! tracks, per file and over logical time, the number of valid pages
//! `N_valid(f, t)` and invalid (stale but physically present) pages
//! `N_invalid(f, t)`. From these it derives the paper's two metrics:
//!
//! * **VAF** (version amplification factor) = `max_t N_invalid / max_t
//!   N_valid` — how many stale versions accumulate;
//! * **T_insecure** = total logical time with `N_invalid > 0`, normalized
//!   to the number of writes that fill the SSD capacity.
//!
//! Files are classified **uni-version (UV)** if their content only ever
//! grows (no overwrite, no delete), else **multi-version (MV)**.
//!
//! Logical time advances by one tick per host page write (the paper uses
//! one tick per 4-KiB write; ours is per 16-KiB page — a constant factor
//! absorbed by the normalization).

use crate::trace::FileId;
use evanesco_ftl::observer::{FtlObserver, InvalidateCause};
use evanesco_ftl::{GlobalPpa, Lpa};
use std::collections::HashMap;

/// Per-file versioning statistics.
#[derive(Debug, Clone, Default)]
pub struct FileVersionStats {
    /// Live pages now.
    pub valid: u64,
    /// Stale-but-present pages now.
    pub invalid: u64,
    /// Peak live pages.
    pub max_valid: u64,
    /// Peak stale pages.
    pub max_invalid: u64,
    /// Accumulated ticks with `invalid > 0`.
    pub insecure_ticks: u64,
    /// Whether the file was ever overwritten or deleted (multi-version).
    pub multi_version: bool,
    insecure_since: Option<u64>,
    /// Optional `(tick, valid, invalid)` timeline (Figure 4).
    pub timeline: Vec<(u64, u64, u64)>,
}

impl FileVersionStats {
    /// Version amplification factor of the file.
    pub fn vaf(&self) -> f64 {
        if self.max_valid == 0 {
            0.0
        } else {
            self.max_invalid as f64 / self.max_valid as f64
        }
    }
}

/// Aggregated statistics for one file class (UV or MV).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassStats {
    /// Number of files in the class.
    pub n_files: u64,
    /// Mean VAF.
    pub vaf_avg: f64,
    /// Max VAF.
    pub vaf_max: f64,
    /// Mean normalized T_insecure.
    pub tinsec_avg: f64,
    /// Max normalized T_insecure.
    pub tinsec_max: f64,
}

/// The Table-1 style report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VerTraceReport {
    /// Uni-version files.
    pub uv: ClassStats,
    /// Multi-version files.
    pub mv: ClassStats,
}

/// The VerTrace observer.
#[derive(Debug, Clone, Default)]
pub struct VerTrace {
    tick: u64,
    record_timelines: bool,
    lpa_file: HashMap<Lpa, FileId>,
    /// `(chip, block)` → page → `(file, live)`.
    phys: HashMap<(usize, u32), HashMap<u32, (FileId, bool)>>,
    files: HashMap<FileId, FileVersionStats>,
}

impl VerTrace {
    /// Creates a VerTrace logger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables per-file `(tick, valid, invalid)` timeline recording
    /// (memory-proportional to the number of page-state changes).
    pub fn with_timelines() -> Self {
        VerTrace { record_timelines: true, ..Self::default() }
    }

    /// Current logical time.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Replayer hook: called before the host writes `[lpa, lpa+n)` on
    /// behalf of `file`; `overwrite` marks in-place file updates.
    pub fn before_write(&mut self, file: FileId, lpa: Lpa, npages: u64, overwrite: bool) {
        for l in lpa..lpa + npages {
            self.lpa_file.insert(l, file);
        }
        let f = self.files.entry(file).or_default();
        if overwrite {
            f.multi_version = true;
        }
    }

    /// Replayer hook: called before the host trims `[lpa, lpa+n)`.
    pub fn before_trim(&mut self, file: FileId, lpa: Lpa, npages: u64) {
        self.files.entry(file).or_default().multi_version = true;
        for l in lpa..lpa + npages {
            self.lpa_file.remove(&l);
        }
    }

    /// Per-file statistics (finalizing open insecure intervals).
    pub fn finalize(&mut self) {
        let tick = self.tick;
        for f in self.files.values_mut() {
            if let Some(since) = f.insecure_since.take() {
                f.insecure_ticks += tick - since;
            }
        }
    }

    /// All per-file statistics.
    pub fn files(&self) -> &HashMap<FileId, FileVersionStats> {
        &self.files
    }

    /// Builds the Table-1 report, normalizing T_insecure by
    /// `capacity_pages` (writes needed to fill the SSD).
    pub fn report(&mut self, capacity_pages: u64) -> VerTraceReport {
        self.finalize();
        let mut uv: Vec<&FileVersionStats> = Vec::new();
        let mut mv: Vec<&FileVersionStats> = Vec::new();
        for f in self.files.values() {
            if f.max_valid == 0 {
                continue;
            }
            if f.multi_version {
                mv.push(f);
            } else {
                uv.push(f);
            }
        }
        let agg = |class: &[&FileVersionStats]| {
            if class.is_empty() {
                return ClassStats::default();
            }
            let n = class.len() as f64;
            let vafs: Vec<f64> = class.iter().map(|f| f.vaf()).collect();
            let tins: Vec<f64> =
                class.iter().map(|f| f.insecure_ticks as f64 / capacity_pages as f64).collect();
            ClassStats {
                n_files: class.len() as u64,
                vaf_avg: vafs.iter().sum::<f64>() / n,
                vaf_max: vafs.iter().copied().fold(0.0, f64::max),
                tinsec_avg: tins.iter().sum::<f64>() / n,
                tinsec_max: tins.iter().copied().fold(0.0, f64::max),
            }
        };
        VerTraceReport { uv: agg(&uv), mv: agg(&mv) }
    }

    /// The file with the largest peak invalid count in the given class,
    /// for the Figure 4 timeplots.
    pub fn worst_file(&self, multi_version: bool) -> Option<(FileId, &FileVersionStats)> {
        self.files
            .iter()
            .filter(|(_, f)| f.multi_version == multi_version && f.max_valid > 0)
            .max_by_key(|(_, f)| f.max_invalid)
            .map(|(&id, f)| (id, f))
    }

    fn note_change(&mut self, file: FileId) {
        let tick = self.tick;
        let record = self.record_timelines;
        let f = self.files.entry(file).or_default();
        f.max_valid = f.max_valid.max(f.valid);
        f.max_invalid = f.max_invalid.max(f.invalid);
        match (f.invalid > 0, f.insecure_since) {
            (true, None) => f.insecure_since = Some(tick),
            (false, Some(since)) => {
                f.insecure_ticks += tick - since;
                f.insecure_since = None;
            }
            _ => {}
        }
        if record {
            f.timeline.push((tick, f.valid, f.invalid));
        }
    }
}

impl FtlObserver for VerTrace {
    fn on_program(&mut self, lpa: Lpa, at: GlobalPpa, _relocation: bool, _secure: bool) {
        let Some(&file) = self.lpa_file.get(&lpa) else { return };
        self.phys.entry((at.chip, at.ppa.block.0)).or_default().insert(at.ppa.page.0, (file, true));
        self.files.entry(file).or_default().valid += 1;
        self.note_change(file);
    }

    fn on_invalidate(
        &mut self,
        at: GlobalPpa,
        _secure: bool,
        sanitized: bool,
        _cause: InvalidateCause,
    ) {
        let key = (at.chip, at.ppa.block.0);
        let Some(block) = self.phys.get_mut(&key) else { return };
        let Some(entry) = block.get_mut(&at.ppa.page.0) else { return };
        let file = entry.0;
        if entry.1 {
            entry.1 = false;
            self.files.entry(file).or_default().valid -= 1;
        }
        if sanitized {
            // Content immediately unrecoverable: never counts as an invalid
            // version.
            block.remove(&at.ppa.page.0);
        } else {
            self.files.entry(file).or_default().invalid += 1;
        }
        self.note_change(file);
    }

    fn on_erase(&mut self, chip: usize, block: evanesco_nand::geometry::BlockId) {
        let Some(entries) = self.phys.remove(&(chip, block.0)) else { return };
        let mut touched = Vec::new();
        for (_, (file, live)) in entries {
            let f = self.files.entry(file).or_default();
            if live {
                f.valid = f.valid.saturating_sub(1);
            } else {
                f.invalid = f.invalid.saturating_sub(1);
            }
            touched.push(file);
        }
        for file in touched {
            self.note_change(file);
        }
    }

    fn on_host_tick(&mut self) {
        self.tick += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evanesco_nand::geometry::{BlockId, Ppa};

    fn at(chip: usize, block: u32, page: u32) -> GlobalPpa {
        GlobalPpa::new(chip, Ppa::new(block, page))
    }

    #[test]
    fn valid_invalid_counting() {
        let mut vt = VerTrace::new();
        vt.before_write(1, 0, 2, false);
        vt.on_host_tick();
        vt.on_program(0, at(0, 0, 0), false, true);
        vt.on_host_tick();
        vt.on_program(1, at(0, 0, 1), false, true);
        let f = &vt.files()[&1];
        assert_eq!((f.valid, f.invalid), (2, 0));

        // Overwrite lpa 0: new program + invalidate old (not sanitized).
        vt.before_write(1, 0, 1, true);
        vt.on_host_tick();
        vt.on_program(0, at(0, 0, 2), false, true);
        vt.on_invalidate(at(0, 0, 0), true, false, InvalidateCause::HostUpdate);
        let f = &vt.files()[&1];
        assert_eq!((f.valid, f.invalid), (2, 1));
        assert!(f.multi_version);
        assert_eq!(f.max_invalid, 1);
    }

    #[test]
    fn sanitized_invalidation_never_counts() {
        let mut vt = VerTrace::new();
        vt.before_write(7, 0, 1, false);
        vt.on_program(0, at(0, 0, 0), false, true);
        vt.on_invalidate(at(0, 0, 0), true, true, InvalidateCause::HostUpdate);
        let f = &vt.files()[&7];
        assert_eq!((f.valid, f.invalid), (0, 0));
        assert_eq!(f.vaf(), 0.0);
    }

    #[test]
    fn erase_clears_invalid_versions() {
        let mut vt = VerTrace::new();
        vt.before_write(1, 0, 1, false);
        vt.on_program(0, at(0, 3, 0), false, true);
        vt.on_invalidate(at(0, 3, 0), true, false, InvalidateCause::HostUpdate);
        assert_eq!(vt.files()[&1].invalid, 1);
        vt.on_erase(0, BlockId(3));
        assert_eq!(vt.files()[&1].invalid, 0);
    }

    #[test]
    fn insecure_time_accumulates_between_transitions() {
        let mut vt = VerTrace::new();
        vt.before_write(1, 0, 1, false);
        vt.on_program(0, at(0, 0, 0), false, true);
        for _ in 0..10 {
            vt.on_host_tick();
        }
        vt.on_invalidate(at(0, 0, 0), true, false, InvalidateCause::HostUpdate); // insecure from tick 10
        for _ in 0..5 {
            vt.on_host_tick();
        }
        vt.on_erase(0, BlockId(0)); // secure again at tick 15
        for _ in 0..100 {
            vt.on_host_tick();
        }
        vt.finalize();
        assert_eq!(vt.files()[&1].insecure_ticks, 5);
    }

    #[test]
    fn report_classifies_uv_and_mv() {
        let mut vt = VerTrace::new();
        // UV file: only grows.
        vt.before_write(1, 0, 2, false);
        vt.on_program(0, at(0, 0, 0), false, true);
        vt.on_program(1, at(0, 0, 1), false, true);
        // MV file: overwritten.
        vt.before_write(2, 10, 1, false);
        vt.on_program(10, at(0, 1, 0), false, true);
        vt.before_write(2, 10, 1, true);
        vt.on_program(10, at(0, 1, 1), false, true);
        vt.on_invalidate(at(0, 1, 0), true, false, InvalidateCause::HostUpdate);
        let report = vt.report(1000);
        assert_eq!(report.uv.n_files, 1);
        assert_eq!(report.mv.n_files, 1);
        assert_eq!(report.uv.vaf_max, 0.0);
        assert!(report.mv.vaf_max > 0.0);
    }

    #[test]
    fn vaf_definition_matches_paper() {
        let f = FileVersionStats { max_valid: 4, max_invalid: 6, ..Default::default() };
        assert!((f.vaf() - 1.5).abs() < 1e-12);
        let g = FileVersionStats::default();
        assert_eq!(g.vaf(), 0.0);
    }

    #[test]
    fn timelines_record_when_enabled() {
        let mut vt = VerTrace::with_timelines();
        vt.before_write(1, 0, 1, false);
        vt.on_program(0, at(0, 0, 0), false, true);
        vt.on_host_tick();
        vt.on_invalidate(at(0, 0, 0), true, false, InvalidateCause::HostUpdate);
        let tl = &vt.files()[&1].timeline;
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0], (0, 1, 0));
        assert_eq!(tl[1], (1, 0, 1));
        assert!(vt.worst_file(false).is_none() || vt.worst_file(false).is_some());
    }

    #[test]
    fn worst_file_selection() {
        let mut vt = VerTrace::new();
        for (file, n) in [(1u32, 2u32), (2, 5)] {
            vt.before_write(file, file as u64 * 100, 1, false);
            vt.on_program(file as u64 * 100, at(0, file, 0), false, true);
            for i in 0..n {
                vt.before_write(file, file as u64 * 100, 1, true);
                vt.on_program(file as u64 * 100, at(0, file, i + 1), false, true);
                vt.on_invalidate(at(0, file, i), true, false, InvalidateCause::HostUpdate);
            }
        }
        let (id, stats) = vt.worst_file(true).unwrap();
        assert_eq!(id, 2);
        assert_eq!(stats.max_invalid, 5);
    }
}

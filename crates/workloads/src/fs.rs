//! A minimal file-system model over the logical page space.
//!
//! The generators need realistic file behaviour — creation, append,
//! overwrite, deletion, fragmentation of the logical address space — without
//! a full file system. `FileModel` tracks which logical pages belong to
//! which file and hands out free pages (first from a recycled pool, so the
//! space fragments over time like a real aged file system).

use crate::trace::FileId;
use evanesco_ftl::Lpa;
use rand::Rng;
use std::collections::HashMap;

/// Metadata of one live file.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Logical pages of the file, in file order.
    pub lpas: Vec<Lpa>,
    /// Security requirement of the file's data.
    pub secure: bool,
}

/// The file/LPA bookkeeping model.
#[derive(Debug, Clone)]
pub struct FileModel {
    logical_pages: u64,
    free: Vec<Lpa>,
    files: HashMap<FileId, FileInfo>,
    live_ids: Vec<FileId>,
    next_id: FileId,
}

impl FileModel {
    /// Creates an empty model over `logical_pages` pages.
    pub fn new(logical_pages: u64) -> Self {
        FileModel {
            logical_pages,
            free: (0..logical_pages).rev().collect(),
            files: HashMap::new(),
            live_ids: Vec::new(),
            next_id: 0,
        }
    }

    /// Number of free logical pages.
    pub fn free_pages(&self) -> u64 {
        self.free.len() as u64
    }

    /// Number of used logical pages.
    pub fn used_pages(&self) -> u64 {
        self.logical_pages - self.free_pages()
    }

    /// Current utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.used_pages() as f64 / self.logical_pages as f64
    }

    /// Number of live files.
    pub fn n_files(&self) -> usize {
        self.live_ids.len()
    }

    /// A live file's metadata.
    pub fn file(&self, id: FileId) -> Option<&FileInfo> {
        self.files.get(&id)
    }

    /// Creates a file of `npages`, allocating logical pages.
    ///
    /// Returns the new file id, or `None` if there is not enough free space.
    pub fn create(&mut self, npages: u64, secure: bool) -> Option<FileId> {
        if self.free_pages() < npages {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        let lpas: Vec<Lpa> = (0..npages).map(|_| self.free.pop().expect("checked")).collect();
        self.files.insert(id, FileInfo { lpas, secure });
        self.live_ids.push(id);
        Some(id)
    }

    /// Appends `npages` to a file. Returns the appended pages, or `None` on
    /// missing file / insufficient space.
    pub fn append(&mut self, id: FileId, npages: u64) -> Option<Vec<Lpa>> {
        if self.free_pages() < npages || !self.files.contains_key(&id) {
            return None;
        }
        let new: Vec<Lpa> = (0..npages).map(|_| self.free.pop().expect("checked")).collect();
        self.files.get_mut(&id).expect("checked").lpas.extend(&new);
        Some(new)
    }

    /// Picks a random in-place overwrite range of up to `npages` within the
    /// file: returns the affected pages (existing LPAs, rewritten in place).
    pub fn overwrite_range<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        id: FileId,
        npages: u64,
    ) -> Option<Vec<Lpa>> {
        let f = self.files.get(&id)?;
        if f.lpas.is_empty() {
            return None;
        }
        let n = npages.min(f.lpas.len() as u64) as usize;
        let start = rng.gen_range(0..=(f.lpas.len() - n));
        Some(f.lpas[start..start + n].to_vec())
    }

    /// Deletes a file, returning its pages to the free pool. Returns the
    /// freed pages (for the trim trace op).
    pub fn delete(&mut self, id: FileId) -> Option<Vec<Lpa>> {
        let f = self.files.remove(&id)?;
        let pos = self.live_ids.iter().position(|&x| x == id).expect("live file listed");
        self.live_ids.swap_remove(pos);
        self.free.extend(f.lpas.iter().copied());
        Some(f.lpas)
    }

    /// A uniformly random live file, if any.
    pub fn random_file<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<FileId> {
        if self.live_ids.is_empty() {
            None
        } else {
            Some(self.live_ids[rng.gen_range(0..self.live_ids.len())])
        }
    }

    /// Splits a page list into maximal contiguous runs `(start, len)`.
    pub fn contiguous_runs(lpas: &[Lpa]) -> Vec<(Lpa, u64)> {
        let mut runs = Vec::new();
        let mut iter = lpas.iter().copied();
        let Some(first) = iter.next() else { return runs };
        let (mut start, mut len) = (first, 1u64);
        for l in iter {
            if l == start + len {
                len += 1;
            } else {
                runs.push((start, len));
                start = l;
                len = 1;
            }
        }
        runs.push((start, len));
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn create_append_delete_lifecycle() {
        let mut fs = FileModel::new(100);
        let f = fs.create(10, true).unwrap();
        assert_eq!(fs.used_pages(), 10);
        let appended = fs.append(f, 5).unwrap();
        assert_eq!(appended.len(), 5);
        assert_eq!(fs.file(f).unwrap().lpas.len(), 15);
        let freed = fs.delete(f).unwrap();
        assert_eq!(freed.len(), 15);
        assert_eq!(fs.used_pages(), 0);
        assert_eq!(fs.n_files(), 0);
    }

    #[test]
    fn create_fails_when_full() {
        let mut fs = FileModel::new(10);
        assert!(fs.create(8, false).is_some());
        assert!(fs.create(3, false).is_none());
        assert!(fs.create(2, false).is_some());
        assert_eq!(fs.utilization(), 1.0);
    }

    #[test]
    fn freed_pages_are_reused() {
        let mut fs = FileModel::new(10);
        let a = fs.create(10, false).unwrap();
        fs.delete(a).unwrap();
        let b = fs.create(10, false).unwrap();
        let mut lpas = fs.file(b).unwrap().lpas.clone();
        lpas.sort_unstable();
        assert_eq!(lpas, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn overwrite_range_stays_in_file() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut fs = FileModel::new(100);
        let f = fs.create(20, true).unwrap();
        for _ in 0..50 {
            let pages = fs.overwrite_range(&mut rng, f, 8).unwrap();
            assert!(pages.len() == 8);
            for p in &pages {
                assert!(fs.file(f).unwrap().lpas.contains(p));
            }
        }
        // Larger than the file: clamped.
        assert_eq!(fs.overwrite_range(&mut rng, f, 100).unwrap().len(), 20);
    }

    #[test]
    fn random_file_uniformish() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut fs = FileModel::new(100);
        let a = fs.create(1, false).unwrap();
        let b = fs.create(1, false).unwrap();
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..100 {
            match fs.random_file(&mut rng).unwrap() {
                x if x == a => seen_a = true,
                x if x == b => seen_b = true,
                _ => unreachable!(),
            }
        }
        assert!(seen_a && seen_b);
        assert_eq!(FileModel::new(5).random_file(&mut rng), None);
    }

    #[test]
    fn contiguous_runs_split_correctly() {
        assert_eq!(FileModel::contiguous_runs(&[0, 1, 2, 5, 6, 9]), vec![(0, 3), (5, 2), (9, 1)]);
        assert_eq!(FileModel::contiguous_runs(&[]), vec![]);
        assert_eq!(FileModel::contiguous_runs(&[7]), vec![(7, 1)]);
    }
}
